//! Reconnecting, retrying client with an increment outbox.
//!
//! [`ProfileClient`] is deliberately fragile: one mid-exchange fault
//! poisons the connection. [`ResilientClient`] wraps it with the policy
//! layer a long-running VM needs:
//!
//! * **Reconnect + bounded retries.** Any retryable failure tears the
//!   connection down and re-establishes it through the injected
//!   connector, with deterministic exponential backoff and full jitter
//!   drawn from a seeded [`cbs_prng::SmallRng`]. Sleeping goes through
//!   an injectable closure, so tests and deterministic experiments
//!   record delays instead of waiting them out.
//! * **Outbox with merge-on-requeue.** Increments from
//!   [`drain_delta`](cbs_dcg::DynamicCallGraph::drain_delta) are queued
//!   as batches and flushed in order; a failed push leaves its batch at
//!   the front of the queue. When the queue exceeds its bound, the two
//!   oldest *unattempted* batches are coalesced with
//!   [`cbs_dcg::coalesce_increments`] — increments are never dropped,
//!   only merged. A batch that has been attempted is never coalesced:
//!   the server may already have applied it, and only its original
//!   sequence number lets the duplicate be detected.
//! * **Exactly-once pushes.** Batches go out via `OP_PUSH_SEQ` with a
//!   per-client monotonic sequence. Retrying a maybe-delivered batch is
//!   safe: the server acknowledges an already-applied sequence as
//!   `duplicate` without re-applying, so no fault pattern can
//!   double-count weight. Combined with lossless requeueing this gives
//!   effectively-once delivery of every increment.
//!
//! Pulls prefer the paged `OP_PULL_CHUNK` form, which keeps working
//! when the merged snapshot outgrows `max_frame_bytes`. Epoch advances
//! are *not* blindly retried — decay is not idempotent — only failures
//! that provably precede delivery (connect errors, busy refusals) are.

use crate::client::{ClientError, ProfileClient, PushOutcome};
use crate::codec::DcgCodec;
use crate::faults::{FaultSchedule, FaultStream};
use crate::metrics::ProfiledMetrics;
use crate::wire::NetConfig;
use cbs_dcg::{coalesce_increments, CallEdge, DynamicCallGraph};
use cbs_inliner::InlinePlan;
use cbs_prng::SmallRng;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The pre-jitter exponential backoff before retry `attempt` (1-based):
/// `base * 2^min(attempt - 1, 16)`, saturating, capped at `max`.
///
/// This is the single source of truth for the backoff shape — the
/// client's jittered delay and every test derive from it. The exponent
/// clamp bounds the shift (so `attempt >= 64`, where `1u32 << attempt`
/// would be UB, is safe) and `saturating_mul` absorbs the remaining
/// overflow; past the clamp the cap normally binds anyway.
pub fn backoff_for_attempt(base: Duration, max: Duration, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    base.saturating_mul(1u32 << exp).min(max)
}

/// Retry and backoff configuration for a [`ResilientClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per operation (first try included) before giving up.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff * 2^(n-1)`, capped at
    /// [`max_backoff`](Self::max_backoff), scaled by a jitter factor in
    /// `[0.5, 1.0)` drawn from the seeded generator.
    pub base_backoff: Duration,
    /// Upper bound on the exponential backoff (pre-jitter).
    pub max_backoff: Duration,
    /// Seed for the jitter generator: same seed, same backoff sequence.
    pub seed: u64,
    /// Outbox bound: past this many queued batches, the oldest
    /// unattempted pair is coalesced into one batch.
    pub max_outbox_batches: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 16,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            seed: 0x5EED,
            max_outbox_batches: 32,
        }
    }
}

/// Delivery counters exposed for logging and experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Successful connection establishments.
    pub connects: usize,
    /// Connections re-established after a failure (`connects - 1`,
    /// except when the very first connect needed retries).
    pub reconnects: usize,
    /// Operation attempts that failed and were retried.
    pub retries: usize,
    /// Push batches acknowledged as `duplicate` (delivered on an
    /// earlier attempt whose reply was lost).
    pub duplicates: usize,
    /// Outbox coalescing events (two batches merged into one).
    pub coalesced: usize,
}

/// One queued increment batch awaiting delivery.
#[derive(Debug)]
struct OutboxBatch {
    seq: u64,
    increments: Vec<(CallEdge, f64)>,
    /// Whether any delivery attempt has been made. An attempted batch
    /// may already be applied server-side, so it must keep its sequence
    /// number and can never be coalesced with another batch.
    attempted: bool,
}

/// A reconnecting profile client with retries, an increment outbox,
/// and exactly-once push semantics. See the module docs.
pub struct ResilientClient<S: Read + Write = TcpStream> {
    connector: Box<dyn FnMut() -> io::Result<S> + Send>,
    sleep: Box<dyn FnMut(Duration) + Send>,
    client: Option<ProfileClient<S>>,
    config: NetConfig,
    policy: RetryPolicy,
    rng: SmallRng,
    client_id: u64,
    next_seq: u64,
    outbox: VecDeque<OutboxBatch>,
    stats: TransportStats,
}

impl<S: Read + Write> std::fmt::Debug for ResilientClient<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("client_id", &self.client_id)
            .field("connected", &self.client.is_some())
            .field("outbox_batches", &self.outbox.len())
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ResilientClient<TcpStream> {
    /// A resilient client reconnecting to `addr` over TCP with
    /// `config`'s timeouts.
    pub fn connect_tcp(
        addr: impl Into<String>,
        config: NetConfig,
        policy: RetryPolicy,
        client_id: u64,
    ) -> Self {
        let addr = addr.into();
        Self::new(
            Box::new(move || {
                let stream = TcpStream::connect(&addr)?;
                stream.set_read_timeout(Some(config.read_timeout))?;
                stream.set_write_timeout(Some(config.write_timeout))?;
                stream.set_nodelay(true).ok();
                Ok(stream)
            }),
            config,
            policy,
            client_id,
        )
    }
}

impl ResilientClient<FaultStream<TcpStream>> {
    /// A resilient client whose every connection to `addr` runs through
    /// the fault proxy driven by the shared `schedule` — the schedule
    /// continues across reconnects rather than restarting.
    pub fn connect_faulty(
        addr: impl Into<String>,
        config: NetConfig,
        policy: RetryPolicy,
        client_id: u64,
        schedule: Arc<Mutex<FaultSchedule>>,
    ) -> Self {
        let addr = addr.into();
        Self::new(
            Box::new(move || FaultStream::connect(&addr, config, Arc::clone(&schedule))),
            config,
            policy,
            client_id,
        )
    }
}

impl<S: Read + Write> ResilientClient<S> {
    /// A resilient client over an arbitrary connector (each call must
    /// yield a fresh connection). `client_id` must be unique per
    /// pushing VM — the server deduplicates sequences per id.
    pub fn new(
        connector: Box<dyn FnMut() -> io::Result<S> + Send>,
        config: NetConfig,
        policy: RetryPolicy,
        client_id: u64,
    ) -> Self {
        Self {
            connector,
            sleep: Box::new(std::thread::sleep),
            client: None,
            config,
            policy,
            rng: SmallRng::seed_from_u64(policy.seed),
            client_id,
            next_seq: 0,
            outbox: VecDeque::new(),
            stats: TransportStats::default(),
        }
    }

    /// Replaces the backoff sleeper (default: `std::thread::sleep`).
    /// Deterministic tests and experiments pass a recorder or a no-op
    /// so no wall-clock time is ever spent waiting.
    #[must_use]
    pub fn with_sleep(mut self, sleep: Box<dyn FnMut(Duration) + Send>) -> Self {
        self.sleep = sleep;
        self
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Batches currently queued for delivery.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Whether a failure class is safe to retry. Transport and framing
    /// failures always are (pushes are deduplicated server-side, pulls
    /// are idempotent); server rejections only when the server refused
    /// *before* acting — backpressure and shutdown refusals.
    fn is_retryable(e: &ClientError) -> bool {
        match e {
            ClientError::Io(_)
            | ClientError::Codec(_)
            | ClientError::Protocol(_)
            | ClientError::Poisoned => true,
            ClientError::Server(msg) => msg.starts_with("busy") || msg.contains("shutting down"),
        }
    }

    /// The deterministic backoff before retry attempt `attempt`
    /// (1-based): [`backoff_for_attempt`] scaled by full jitter in
    /// `[0.5, 1.0)` from the seeded generator.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let raw = backoff_for_attempt(self.policy.base_backoff, self.policy.max_backoff, attempt);
        let jitter = 0.5 + 0.5 * self.rng.gen_f64();
        raw.mul_f64(jitter)
    }

    fn backoff(&mut self, attempt: u32) {
        let d = self.backoff_delay(attempt);
        // Deterministic despite being a time total: the delay comes from
        // the seeded jitter RNG, not from observed wall-clock.
        ProfiledMetrics::get()
            .client_backoff_ms
            .add(d.as_millis().min(u128::from(u64::MAX)) as u64);
        (self.sleep)(d);
    }

    /// Drops the current connection so the next operation reconnects.
    fn disconnect(&mut self) {
        self.client = None;
    }

    fn ensure_connected(&mut self) -> Result<&mut ProfileClient<S>, ClientError> {
        if self.client.as_ref().is_some_and(|c| !c.is_poisoned()) {
            return Ok(self.client.as_mut().expect("checked above"));
        }
        let stream = (self.connector)()?;
        if self.stats.connects > 0 {
            self.stats.reconnects += 1;
            ProfiledMetrics::get().client_reconnects.inc();
        }
        self.stats.connects += 1;
        Ok(self
            .client
            .insert(ProfileClient::from_stream(stream, self.config)))
    }

    /// Queues `increments` (one [`drain_delta`] harvest) and attempts
    /// to flush the whole outbox in order.
    ///
    /// On failure the undelivered batches — including this one — stay
    /// queued; a later [`push_delta`](Self::push_delta) or
    /// [`flush`](Self::flush) picks them up. No increment is ever
    /// dropped; past the outbox bound, adjacent unattempted batches are
    /// merged.
    ///
    /// [`drain_delta`]: cbs_dcg::DynamicCallGraph::drain_delta
    ///
    /// # Errors
    ///
    /// The last attempt's failure once retries are exhausted.
    pub fn push_delta(&mut self, increments: Vec<(CallEdge, f64)>) -> Result<(), ClientError> {
        self.enqueue(increments);
        self.flush()
    }

    /// Flushes every queued batch in order.
    ///
    /// # Errors
    ///
    /// The last attempt's failure once retries are exhausted; remaining
    /// batches stay queued.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        while let Some(front) = self.outbox.front() {
            let seq = front.seq;
            let frame = DcgCodec::encode_delta(&front.increments);
            let outcome = match self.retrying(|c| c.push_seq_front(seq, &frame)) {
                Ok(o) => o,
                Err(e) => {
                    // The front batch (and everything behind it) stays
                    // queued for the next flush.
                    ProfiledMetrics::get().client_requeued_batches.inc();
                    return Err(e);
                }
            };
            if outcome == PushOutcome::Duplicate {
                self.stats.duplicates += 1;
                ProfiledMetrics::get().client_duplicates.inc();
            }
            self.outbox.pop_front();
        }
        Ok(())
    }

    fn enqueue(&mut self, increments: Vec<(CallEdge, f64)>) {
        let increments = coalesce_increments(&increments, &[]);
        if increments.is_empty() {
            return;
        }
        self.next_seq += 1;
        self.outbox.push_back(OutboxBatch {
            seq: self.next_seq,
            increments,
            attempted: false,
        });
        while self.outbox.len() > self.policy.max_outbox_batches.max(1) {
            // Merge the two oldest *unattempted* batches. At most the
            // front batch can be attempted (only the front is ever
            // sent), so the candidate pair starts at index 0 or 1.
            let i = usize::from(self.outbox[0].attempted);
            if i + 1 >= self.outbox.len() {
                break; // nothing mergeable; tolerate the overshoot
            }
            let a = self.outbox.remove(i).expect("index checked");
            let b = &mut self.outbox[i];
            b.increments = coalesce_increments(&a.increments, &b.increments);
            // `b` already has the higher sequence (batches are queued in
            // assignment order); keeping it preserves monotonicity. The
            // server tolerates the resulting gap.
            self.stats.coalesced += 1;
            ProfiledMetrics::get().client_coalesced_batches.inc();
        }
    }

    /// Runs `op` against a live connection, reconnecting and retrying
    /// on retryable failures up to the policy's attempt budget.
    fn retrying<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            match op(self) {
                Ok(v) => return Ok(v),
                Err(e) if Self::is_retryable(&e) && attempt < self.policy.max_attempts => {
                    self.disconnect();
                    self.stats.retries += 1;
                    ProfiledMetrics::get().client_retries.inc();
                    self.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One delivery attempt of the front batch (caller supplies its
    /// seq/frame so the borrow of `self.outbox` has ended).
    fn push_seq_front(&mut self, seq: u64, frame: &[u8]) -> Result<PushOutcome, ClientError> {
        if let Some(front) = self.outbox.front_mut() {
            front.attempted = true;
        }
        let client_id = self.client_id;
        self.ensure_connected()?.push_seq(client_id, seq, frame)
    }

    /// Pulls the merged snapshot via paged `OP_PULL_CHUNK` exchanges,
    /// with reconnection and retries (pulls are idempotent).
    ///
    /// # Errors
    ///
    /// The last attempt's failure once retries are exhausted.
    pub fn pull(&mut self) -> Result<DynamicCallGraph, ClientError> {
        self.retrying(|s| s.ensure_connected()?.pull_chunked())
    }

    /// [`pull`](Self::pull), also returning the page count of the
    /// successful attempt.
    ///
    /// # Errors
    ///
    /// As [`pull`](Self::pull).
    pub fn pull_counted(&mut self) -> Result<(DynamicCallGraph, u32), ClientError> {
        self.retrying(|s| s.ensure_connected()?.pull_chunked_counted())
    }

    /// Pulls the fleet inlining plan, with reconnection and retries
    /// (plan pulls are idempotent: an unchanged aggregate answers
    /// byte-identically from the generation-keyed cache).
    ///
    /// # Errors
    ///
    /// The last attempt's failure once retries are exhausted.
    pub fn pull_plan(&mut self) -> Result<InlinePlan, ClientError> {
        self.retrying(|s| s.ensure_connected()?.pull_plan())
    }

    /// Fetches the server's stats text, with reconnection and retries.
    ///
    /// # Errors
    ///
    /// The last attempt's failure once retries are exhausted.
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        self.retrying(|s| s.ensure_connected()?.stats_text())
    }

    /// Fetches the server's telemetry exposition, with reconnection and
    /// retries.
    ///
    /// # Errors
    ///
    /// The last attempt's failure once retries are exhausted.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.retrying(|s| s.ensure_connected()?.metrics_text())
    }

    /// Advances the decay epoch. **Not** blindly retried: decay is not
    /// idempotent, so only failures that provably precede delivery
    /// (connect failures, busy/shutdown refusals) are retried; a
    /// mid-exchange transport failure is surfaced to the caller, who
    /// must decide whether the epoch may have advanced.
    ///
    /// # Errors
    ///
    /// Any mid-exchange failure, or the last pre-delivery failure once
    /// retries are exhausted.
    pub fn advance_epoch(&mut self) -> Result<u64, ClientError> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            // Connect failures are always safe to retry.
            match self.ensure_connected().map(drop) {
                Ok(()) => {}
                Err(e) if Self::is_retryable(&e) && attempt < self.policy.max_attempts => {
                    self.disconnect();
                    self.stats.retries += 1;
                    ProfiledMetrics::get().client_retries.inc();
                    self.backoff(attempt);
                    continue;
                }
                Err(e) => return Err(e),
            }
            match self
                .client
                .as_mut()
                .expect("just connected")
                .advance_epoch()
            {
                Ok(epoch) => return Ok(epoch),
                // A server refusal means the request was *not* acted on.
                Err(e @ ClientError::Server(_))
                    if Self::is_retryable(&e) && attempt < self.policy.max_attempts =>
                {
                    self.stats.retries += 1;
                    ProfiledMetrics::get().client_retries.inc();
                    self.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn edge(n: u32) -> CallEdge {
        CallEdge::new(MethodId::new(n), CallSiteId::new(0), MethodId::new(n + 1))
    }

    /// A connector that always fails, for exercising the retry loop
    /// without a server.
    fn unreachable_client(policy: RetryPolicy) -> ResilientClient<std::io::Cursor<Vec<u8>>> {
        ResilientClient::new(
            Box::new(|| {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "no server",
                ))
            }),
            NetConfig::default(),
            policy,
            1,
        )
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            seed: 42,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            ..RetryPolicy::default()
        };
        let delays = |policy| {
            let mut c = unreachable_client(policy);
            (1..=12).map(|a| c.backoff_delay(a)).collect::<Vec<_>>()
        };
        let a = delays(policy);
        let b = delays(policy);
        assert_eq!(a, b, "same seed must give the same backoff sequence");
        for (i, d) in a.iter().enumerate() {
            let attempt = i as u32 + 1;
            // The expected pre-jitter delay comes from the same helper
            // the client uses — the formula lives in exactly one place.
            let exp = backoff_for_attempt(
                Duration::from_millis(10),
                Duration::from_millis(500),
                attempt,
            );
            assert!(
                *d >= exp.mul_f64(0.5) && *d < exp,
                "attempt {attempt}: {d:?} outside jitter window of {exp:?}"
            );
        }
        // The cap binds from attempt 7 on (10ms * 2^6 = 640ms > 500ms).
        assert!(a[8] <= Duration::from_millis(500));
    }

    #[test]
    fn retries_are_bounded_and_sleep_through_the_injected_closure() {
        let policy = RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        };
        let sleeps = Arc::new(AtomicUsize::new(0));
        let recorded = Arc::clone(&sleeps);
        let mut c = unreachable_client(policy).with_sleep(Box::new(move |_| {
            recorded.fetch_add(1, Ordering::SeqCst);
        }));
        let err = c
            .push_delta(vec![(edge(1), 3.0)])
            .expect_err("no server to reach");
        assert!(matches!(err, ClientError::Io(_)), "{err}");
        assert_eq!(sleeps.load(Ordering::SeqCst), 4, "max_attempts-1 backoffs");
        assert_eq!(c.stats().retries, 4);
        assert_eq!(c.outbox_len(), 1, "failed batch stays queued");
    }

    #[test]
    fn outbox_coalesces_oldest_unattempted_batches_losslessly() {
        let policy = RetryPolicy {
            max_outbox_batches: 2,
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        let mut c = unreachable_client(policy).with_sleep(Box::new(|_| {}));
        // Three failed pushes against a 2-batch bound.
        for i in 0..3u32 {
            let _ = c.push_delta(vec![(edge(i), 1.0), (edge(100), 1.0)]);
        }
        assert_eq!(c.outbox_len(), 2, "bound enforced by coalescing");
        assert_eq!(c.stats().coalesced, 1);
        // The front batch was attempted (delivery was tried), so the
        // merge must have combined the two *later* batches.
        assert!(c.outbox[0].attempted);
        assert_eq!(
            c.outbox[0].increments,
            vec![(edge(0), 1.0), (edge(100), 1.0)]
        );
        assert!(!c.outbox[1].attempted);
        // Lossless: the shared edge's weight is summed, nothing dropped.
        assert_eq!(
            c.outbox[1].increments,
            vec![(edge(1), 1.0), (edge(2), 1.0), (edge(100), 2.0)]
        );
        // The merged batch keeps the higher sequence.
        assert_eq!(c.outbox[1].seq, 3);
    }

    /// Property test for the shared backoff helper: delays never
    /// decrease with the attempt number, never exceed the cap, and stay
    /// finite (no shift/multiply overflow) arbitrarily deep into a
    /// retry storm — including `attempt >= 64`, where an unclamped
    /// `1u32 << attempt` would be undefined behaviour.
    #[test]
    fn backoff_for_attempt_is_monotonic_capped_and_overflow_safe() {
        cbs_prng::prop::run_cases("backoff_for_attempt", 128, |rng| {
            let base = Duration::from_millis(rng.gen_range(1u64..=10_000));
            let max = Duration::from_millis(rng.gen_range(1u64..=600_000));
            let mut prev = Duration::ZERO;
            for attempt in 1..=96u32 {
                let d = backoff_for_attempt(base, max, attempt);
                assert!(
                    d >= prev,
                    "base={base:?} max={max:?}: delay shrank at attempt {attempt} \
                     ({prev:?} -> {d:?})"
                );
                assert!(d <= max.max(base), "attempt {attempt}: {d:?} above the cap");
                prev = d;
            }
            // Deep attempts degenerate to a constant: the clamped
            // exponent makes 65, 66, … identical to 64.
            let deep = backoff_for_attempt(base, max, 64);
            assert_eq!(deep, backoff_for_attempt(base, max, 65));
            assert_eq!(deep, backoff_for_attempt(base, max, u32::MAX));
            // Degenerate extremes stay overflow-free.
            let huge = backoff_for_attempt(Duration::MAX, Duration::MAX, u32::MAX);
            assert_eq!(huge, Duration::MAX);
        });
    }

    #[test]
    fn empty_deltas_are_not_queued() {
        let mut c = unreachable_client(RetryPolicy::default());
        c.push_delta(Vec::new()).expect("nothing to deliver");
        c.push_delta(vec![(edge(1), 0.0), (edge(2), -4.0)])
            .expect("non-positive increments are dropped at the door");
        assert_eq!(c.outbox_len(), 0);
    }
}
