//! The ingest journal seam: where durability plugs into the server.
//!
//! Every state-changing request the server acknowledges — `OP_PUSH`,
//! `OP_PUSH_SEQ`, `OP_EPOCH` — flows through a [`ProfileJournal`]
//! before the `ST_OK` goes out. The trait owns the whole
//! check–journal–apply–record sequence so that an implementation can
//! make it atomic with respect to its own persistence:
//!
//! * [`MemJournal`] (the default) applies straight to the
//!   [`ShardedAggregator`] and keeps the [`DedupTable`] under its own
//!   mutex — exactly the pre-durability server behavior;
//! * `cbs-store`'s `ProfileStore` appends each accepted operation to a
//!   CRC-framed write-ahead log first, so a restart can replay the
//!   journal and reproduce the aggregator (and the dedup table)
//!   bit-for-bit.
//!
//! The dedup table lives *inside* the journal because sequenced ingest
//! must hold one lock across check-apply-record (a retry racing a
//! half-applied original must observe the pair atomically), and a
//! durable journal must additionally capture the table in the same
//! critical section its checkpoints snapshot the graph.

use crate::aggregator::{IngestScratch, ShardedAggregator};
use crate::codec::{CodecError, DcgCodec, FrameKind};
use crate::dedup::DedupTable;
use crate::metrics::ProfiledMetrics;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Why a journaled operation was not applied.
#[derive(Debug)]
pub enum JournalError {
    /// The frame payload failed codec validation; nothing was applied
    /// or journaled.
    Frame(CodecError),
    /// The journal's backing storage failed; nothing was applied (the
    /// client may retry once the storage recovers).
    Storage(std::io::Error),
    /// A scripted crash point fired (or a previous one left the store
    /// poisoned); the store refuses all further operations until
    /// reopened.
    Crashed,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Frame(e) => write!(f, "bad frame: {e}"),
            JournalError::Storage(e) => write!(f, "journal storage: {e}"),
            JournalError::Crashed => write!(f, "journal crashed (store must be reopened)"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Frame(e) => Some(e),
            JournalError::Storage(e) => Some(e),
            JournalError::Crashed => None,
        }
    }
}

impl From<CodecError> for JournalError {
    fn from(e: CodecError) -> Self {
        JournalError::Frame(e)
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Storage(e)
    }
}

/// Outcome of a sequenced ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqIngest {
    /// The frame was new and has been journaled and applied.
    Applied {
        /// Snapshot or delta.
        kind: FrameKind,
        /// Records applied.
        records: usize,
    },
    /// The sequence was already applied; the (validated) retransmission
    /// was acknowledged without being re-applied.
    Duplicate,
}

/// Point-in-time dedup-table usage, for `OP_STATS` / `OP_METRICS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupUsage {
    /// Clients currently tracked.
    pub clients: usize,
    /// Highest applied sequence across clients.
    pub max_seq: u64,
}

/// The server's write path: everything that mutates aggregator state
/// goes through here before it is acknowledged.
///
/// Implementations must be safe to share across connection threads
/// (`&self` methods) and must keep the invariant that an operation
/// returning `Ok` has been made exactly as durable as the
/// implementation promises *before* returning — the server sends the
/// `ST_OK` immediately after.
pub trait ProfileJournal: Send + Sync + fmt::Debug {
    /// Validates, journals, and applies one unsequenced frame
    /// (`OP_PUSH`), returning its kind and record count.
    ///
    /// # Errors
    ///
    /// [`JournalError::Frame`] for invalid payloads (nothing applied),
    /// [`JournalError::Storage`] / [`JournalError::Crashed`] for
    /// journal failures (nothing applied).
    fn ingest_frame(
        &self,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<(FrameKind, usize), JournalError>;

    /// Exactly-once sequenced ingest (`OP_PUSH_SEQ`): applies the frame
    /// if `seq` is new for `client_id` and records the pair in the
    /// dedup table atomically; acknowledges a duplicate without
    /// re-applying, but only after validating the retransmission ("bad
    /// frame beats duplicate").
    ///
    /// # Errors
    ///
    /// As [`ingest_frame`](Self::ingest_frame).
    fn ingest_sequenced(
        &self,
        client_id: u64,
        seq: u64,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<SeqIngest, JournalError>;

    /// Journals and applies one epoch advance (`OP_EPOCH`), returning
    /// the new epoch.
    ///
    /// # Errors
    ///
    /// [`JournalError::Storage`] / [`JournalError::Crashed`]; the epoch
    /// is not advanced on error.
    fn advance_epoch(&self) -> Result<u64, JournalError>;

    /// Current dedup-table usage.
    fn dedup_usage(&self) -> DedupUsage;

    /// Makes every acknowledged operation as durable as the backend
    /// can: a durable journal syncs its WAL tail; the in-memory journal
    /// (the default implementation) has nothing to flush. Called by
    /// `ServerHandle::shutdown` so a graceful exit under a lazy fsync
    /// policy does not leave acked frames exposed to a power loss.
    ///
    /// # Errors
    ///
    /// [`JournalError::Storage`] / [`JournalError::Crashed`] when the
    /// backend cannot sync.
    fn flush(&self) -> Result<(), JournalError> {
        Ok(())
    }
}

/// The in-memory journal: no durability, aggregator semantics identical
/// to the pre-durability server. Used whenever no data directory is
/// configured.
#[derive(Debug)]
pub struct MemJournal {
    aggregator: Arc<ShardedAggregator>,
    dedup: Mutex<DedupTable>,
}

impl MemJournal {
    /// Wraps `aggregator` with a dedup table of the default capacity.
    pub fn new(aggregator: Arc<ShardedAggregator>) -> Self {
        Self::with_capacity(aggregator, DedupTable::DEFAULT_CAPACITY)
    }

    /// Wraps `aggregator` with a dedup table capped at
    /// `dedup_capacity` clients (`0` = unbounded).
    pub fn with_capacity(aggregator: Arc<ShardedAggregator>, dedup_capacity: usize) -> Self {
        Self {
            aggregator,
            dedup: Mutex::new(DedupTable::new(dedup_capacity)),
        }
    }

    /// The shared dedup-table mutex (exposed for tests that script
    /// poisoning; production code goes through the trait).
    pub fn dedup(&self) -> &Mutex<DedupTable> {
        &self.dedup
    }

    /// Locks the dedup table, recovering from poisoning.
    ///
    /// A handler that panics mid-update leaves the table *valid*:
    /// either the frame was applied and its sequence recorded, or
    /// neither happened. Treating the poison as fatal would turn one
    /// crashed connection into a permanent outage of every later
    /// `OP_PUSH_SEQ` exchange.
    fn lock_dedup(&self) -> MutexGuard<'_, DedupTable> {
        self.dedup.lock().unwrap_or_else(|e: PoisonError<_>| {
            ProfiledMetrics::get().server_seq_lock_recovered.inc();
            e.into_inner()
        })
    }
}

impl ProfileJournal for MemJournal {
    fn ingest_frame(
        &self,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<(FrameKind, usize), JournalError> {
        Ok(self.aggregator.ingest_frame_bytes(bytes, scratch)?)
    }

    fn ingest_sequenced(
        &self,
        client_id: u64,
        seq: u64,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<SeqIngest, JournalError> {
        // Hold the table lock across check-apply-record: a retry of the
        // same batch arriving on a fresh connection while a zombie
        // thread is mid-apply must observe apply+record atomically, or
        // it could double-count the frame.
        let mut table = self.lock_dedup();
        let last = table.last_seq(client_id).unwrap_or(0);
        if seq > last {
            let (kind, records) = self.aggregator.ingest_frame_bytes(bytes, scratch)?;
            table.record(client_id, seq);
            Ok(SeqIngest::Applied { kind, records })
        } else {
            drop(table);
            // Bad frame beats duplicate: the retransmission is
            // acknowledged only if it is well-formed.
            DcgCodec::validate(bytes)?;
            Ok(SeqIngest::Duplicate)
        }
    }

    fn advance_epoch(&self) -> Result<u64, JournalError> {
        Ok(self.aggregator.advance_epoch())
    }

    fn dedup_usage(&self) -> DedupUsage {
        let table = self.lock_dedup();
        DedupUsage {
            clients: table.len(),
            max_seq: table.max_seq(),
        }
    }
}
