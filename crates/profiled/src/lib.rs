//! # cbs-profiled
//!
//! Fleet-scale profile ingestion and aggregation for the Arnold–Grove
//! CGO'05 reproduction: the tier that turns many per-VM dynamic call
//! graph streams into one fleet-wide profile for the inliners.
//!
//! Three layers, each usable on its own:
//!
//! * [`codec`] — [`DcgCodec`], the compact binary wire format: varint +
//!   delta-encoded 96-bit edge keys, bit-exact weights, and two frame
//!   kinds (full *snapshot*, incremental *delta* fed by
//!   [`cbs_dcg::DynamicCallGraph::drain_delta`]);
//! * [`aggregator`] — [`ShardedAggregator`], hash-partitioned by caller
//!   across N shards with a lazily-applied exponential-decay epoch
//!   clock, consistent merged snapshots, and the hot-edge /
//!   receiver-distribution queries the 40%-rule inliner consumes;
//! * [`server`]/[`client`] — a `std::net` TCP service speaking
//!   length-prefixed frames with per-connection timeouts, frame-size and
//!   inflight-connection limits, and malformed-frame rejection that
//!   never takes the server down.
//!
//! The exploitation loop closes over the same service: the aggregator
//! runs `cbs_inliner::build_plan` (the paper's `NewLinearPolicy` + 40%
//! guarded-inlining rule) against its merged snapshot and serves the
//! resulting [`cbs_inliner::InlinePlan`] as a `CBSI` frame over
//! `OP_PLAN` ([`ProfileClient::pull_plan`]), cached keyed on the
//! snapshot generation so an unchanged aggregate answers
//! byte-identically.
//!
//! On top of the base client sit the resilience layers:
//!
//! * [`resilient`] — [`ResilientClient`], reconnect + bounded retries
//!   with deterministic seeded backoff, an increment outbox with
//!   merge-on-requeue, and exactly-once `OP_PUSH_SEQ` delivery so no
//!   fault pattern can lose or double-count weight;
//! * [`faults`] — [`FaultStream`]/[`FaultSchedule`], a deterministic
//!   in-process fault proxy (drops, delays, truncations, resets, busy
//!   refusals on a seeded schedule) used by the tests and the
//!   `repro -- fleet --faults` experiment; it also carries the
//!   scripted crash points ([`CrashSite`]/[`CrashSpec`]) the durable
//!   store (`cbs-store`) honours in its write path.
//!
//! The server's write path is abstracted behind [`ProfileJournal`]
//! ([`journal`]): the default [`MemJournal`] applies straight to the
//! aggregator, while `cbs-store`'s `ProfileStore` journals every
//! accepted operation to a write-ahead log first so a restart recovers
//! the aggregator — and the bounded [`DedupTable`] ([`dedup`]) —
//! bit-for-bit.
//!
//! ## Loopback example
//!
//! ```
//! use cbs_profiled::{serve, AggregatorConfig, NetConfig, ProfileClient, ShardedAggregator};
//! use cbs_bytecode::{CallSiteId, MethodId};
//! use cbs_dcg::{CallEdge, DynamicCallGraph};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
//! let server = serve("127.0.0.1:0", agg, NetConfig::default())?;
//!
//! let mut vm_profile = DynamicCallGraph::new();
//! vm_profile.record(
//!     CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1)),
//!     42.0,
//! );
//! let mut client = ProfileClient::connect(server.addr(), NetConfig::default())?;
//! client.push_snapshot(&vm_profile)?;
//! let fleet = client.pull()?;
//! assert_eq!(fleet, vm_profile);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregator;
pub mod client;
pub mod codec;
pub mod dedup;
pub mod faults;
pub mod journal;
pub mod metrics;
pub mod resilient;
pub mod server;
pub mod wire;

pub use aggregator::{AggregatorConfig, AggregatorStats, IngestScratch, ShardedAggregator};
pub use client::{ClientError, ProfileClient, PushOutcome};
pub use codec::{CodecError, DcgCodec, DcgFrame, FrameKind};
pub use dedup::{DedupEntry, DedupTable};
pub use faults::{CrashSite, CrashSpec, Fault, FaultCounts, FaultSchedule, FaultStream};
pub use journal::{DedupUsage, JournalError, MemJournal, ProfileJournal, SeqIngest};
pub use metrics::ProfiledMetrics;
pub use resilient::{backoff_for_attempt, ResilientClient, RetryPolicy, TransportStats};
pub use server::{serve, serve_with, ServerConfig, ServerHandle};
pub use wire::NetConfig;
