//! Length-prefixed message framing and the request/response byte codes.
//!
//! Every message on a profile-service connection is
//! `u32 big-endian length | length bytes`. Requests open with an op
//! byte, responses with a status byte:
//!
//! ```text
//! request  := OP_PUSH       | codec frame     -- fold a frame in
//!           | OP_PULL                          -- fetch merged snapshot
//!           | OP_STATS                         -- fetch ingestion counters
//!           | OP_EPOCH                         -- advance the decay epoch
//!           | OP_PULL_CHUNK | u32 page (BE)    -- fetch one snapshot page
//!           | OP_PUSH_SEQ   | u64 client (BE) | u64 seq (BE) | codec frame
//!           | OP_METRICS                       -- fetch telemetry exposition
//!           | OP_PLAN                          -- fetch the fleet inlining plan
//! response := ST_OK    | payload               -- op-specific payload
//!           | ST_ERR   | utf-8 reason
//! ```
//!
//! `OP_PULL_CHUNK` pages a merged snapshot whose encoding exceeds
//! `max_frame_bytes`: the reply payload is
//! `u32 total_pages (BE) | u32 page (BE) | chunk bytes`, and
//! concatenating the chunks of pages `0..total_pages` yields the exact
//! snapshot frame `OP_PULL` would have carried. Requesting page 0
//! (re)captures a consistent snapshot for the connection; later pages
//! are served from that capture, so pagination never observes a torn
//! merge.
//!
//! `OP_PUSH_SEQ` is the exactly-once push used by the resilient client:
//! the server remembers the highest sequence applied per client id and
//! acknowledges — without re-applying — any frame at or below it
//! (payload `applied` vs `duplicate`), which makes blind retries of a
//! maybe-delivered frame safe.
//!
//! The reader enforces a maximum frame length *before* allocating, so a
//! hostile or corrupt length prefix cannot balloon memory; oversized and
//! malformed messages are surfaced as errors the server answers with
//! `ST_ERR` and a connection close — never a crash.

use std::io::{self, Read, Write};

/// Push one codec frame (body: the frame bytes).
pub const OP_PUSH: u8 = 1;
/// Request the merged snapshot (no body; response body: snapshot frame).
pub const OP_PULL: u8 = 2;
/// Request ingestion counters (no body; response body: `key=value` lines).
pub const OP_STATS: u8 = 3;
/// Advance the epoch clock (no body; response body: new epoch, decimal).
pub const OP_EPOCH: u8 = 4;
/// Request one page of the merged snapshot (body: `u32` page index,
/// big-endian; response body: `u32` total pages | `u32` page | chunk).
pub const OP_PULL_CHUNK: u8 = 5;
/// Push one codec frame exactly once (body: `u64` client id | `u64`
/// sequence | frame bytes, ids big-endian; response body: `applied` or
/// `duplicate`).
pub const OP_PUSH_SEQ: u8 = 6;
/// Request the process-wide telemetry exposition (no body; response
/// body: the versioned `cbs-telemetry` text format, utf-8).
pub const OP_METRICS: u8 = 7;
/// Request the fleet inlining plan built from the merged snapshot (no
/// body; response body: a `CBSI` plan frame, served from the
/// generation-keyed cache so an unchanged aggregate answers
/// byte-identically).
pub const OP_PLAN: u8 = 8;

/// Fixed bytes of an `OP_PULL_CHUNK` reply besides the chunk itself:
/// status byte + total-pages word + page word.
pub const CHUNK_REPLY_OVERHEAD: usize = 1 + 4 + 4;

/// Success status byte.
pub const ST_OK: u8 = 0;
/// Error status byte (payload: utf-8 reason).
pub const ST_ERR: u8 = 1;

/// Limits and timeouts for one side of a profile-service connection.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Largest accepted message payload, in bytes. Both sides enforce it
    /// on reads; the server also refuses to send a snapshot above it.
    pub max_frame_bytes: usize,
    /// Server-side cap on concurrently served connections; excess
    /// connections receive `ST_ERR busy` and are closed (backpressure).
    pub max_inflight: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: std::time::Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: std::time::Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_frame_bytes: 64 << 20,
            max_inflight: 64,
            read_timeout: std::time::Duration::from_secs(10),
            write_timeout: std::time::Duration::from_secs(10),
        }
    }
}

/// Reads one length-prefixed message.
///
/// Returns `Ok(None)` on clean end-of-stream (the peer closed between
/// messages).
///
/// # Errors
///
/// I/O failures, truncation mid-message, and length prefixes above
/// `max_frame_bytes` (surfaced as [`io::ErrorKind::InvalidData`]).
pub fn read_msg(r: &mut impl Read, max_frame_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    let mut buf = Vec::new();
    Ok(read_msg_into(r, max_frame_bytes, &mut buf)?.map(|_| buf))
}

/// Reads one length-prefixed message into a caller-owned buffer,
/// returning its length.
///
/// This is the pooled variant of [`read_msg`]: `buf` is cleared and
/// refilled, retaining its capacity across calls, so a connection loop
/// reading into the same buffer allocates nothing once the buffer has
/// grown to the connection's working frame size. Returns `Ok(None)` on
/// clean end-of-stream (the peer closed between messages); `buf` is
/// left empty then.
///
/// # Errors
///
/// I/O failures, truncation mid-message, and length prefixes above
/// `max_frame_bytes` (surfaced as [`io::ErrorKind::InvalidData`]).
pub fn read_msg_into(
    r: &mut impl Read,
    max_frame_bytes: usize,
    buf: &mut Vec<u8>,
) -> io::Result<Option<usize>> {
    buf.clear();
    let mut len_buf = [0u8; 4];
    // A clean EOF is only clean on the first header byte.
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        1 => {}
        _ => unreachable!("read of a 1-byte buffer returns 0 or 1"),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("message of {len} bytes exceeds the {max_frame_bytes}-byte frame limit"),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(Some(len))
}

/// Writes one length-prefixed message built from `parts` (concatenated),
/// flushing afterwards.
///
/// # Errors
///
/// I/O failures, and a combined length above `u32::MAX`.
pub fn write_msg(w: &mut impl Write, parts: &[&[u8]]) -> io::Result<()> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    let len32 = u32::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "message exceeds u32 length"))?;
    w.write_all(&len32.to_be_bytes())?;
    for p in parts {
        w.write_all(p)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn messages_round_trip() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &[&[OP_PUSH], b"payload"]).unwrap();
        write_msg(&mut buf, &[&[]]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_msg(&mut cur, 1024).unwrap().unwrap(), b"\x01payload");
        assert_eq!(read_msg(&mut cur, 1024).unwrap().unwrap(), b"");
        assert_eq!(read_msg(&mut cur, 1024).unwrap(), None, "clean EOF");
    }

    #[test]
    fn read_msg_into_reuses_the_buffer_across_messages() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &[b"a longer first message"]).unwrap();
        write_msg(&mut buf, &[b"short"]).unwrap();
        let mut cur = Cursor::new(buf);
        let mut pooled = Vec::new();
        assert_eq!(
            read_msg_into(&mut cur, 1024, &mut pooled).unwrap(),
            Some(22)
        );
        assert_eq!(pooled, b"a longer first message");
        let cap = pooled.capacity();
        assert_eq!(read_msg_into(&mut cur, 1024, &mut pooled).unwrap(), Some(5));
        assert_eq!(pooled, b"short");
        assert_eq!(pooled.capacity(), cap, "buffer capacity is retained");
        assert_eq!(read_msg_into(&mut cur, 1024, &mut pooled).unwrap(), None);
        assert!(pooled.is_empty(), "clean EOF leaves the buffer empty");
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        // Claims 4 GiB-ish with no body.
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_msg(&mut Cursor::new(buf), 1 << 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_mid_message_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &[b"hello"]).unwrap();
        for cut in 1..buf.len() {
            let got = read_msg(&mut Cursor::new(&buf[..cut]), 1024);
            assert!(got.is_err(), "cut at {cut} must error, got {got:?}");
        }
    }
}
