//! # cbs-telemetry
//!
//! Lock-free, always-on metrics for the profile pipeline: atomic
//! [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s behind a
//! process-wide [`Registry`].
//!
//! The design goals, in order:
//!
//! 1. **Inert.** Instrumentation must never change what the
//!    instrumented code computes — profile bytes and experiment renders
//!    are bit-identical with telemetry enabled, disabled, or compiled
//!    out of mind. Handles only ever *add* to atomics; no metric is read
//!    on any data path.
//! 2. **Cheap.** A counter increment is one relaxed atomic load (the
//!    kill switch) plus one relaxed `fetch_add`. Handles are resolved
//!    once — typically into a `OnceLock` struct of named fields per
//!    subsystem — so the hot path never touches the registry's name
//!    table.
//! 3. **Deterministic.** Counter values are sums of events, so for a
//!    deterministic workload they are reproducible regardless of thread
//!    interleaving (atomic addition commutes). Metrics whose *values*
//!    depend on wall-clock time (latency histograms) are tagged
//!    [`Stability::Wallclock`] at registration and can be filtered out
//!    of deterministic renders ([`Snapshot::deterministic`]).
//!
//! ## Exposition format
//!
//! [`Registry::render`] (and [`Snapshot::render`]) emit a versioned,
//! line-oriented text exposition, sorted by metric name:
//!
//! ```text
//! # cbs-telemetry v1
//! counter cbs.samples 42
//! gauge profiled.agg.epoch 3
//! histogram profiled.server.frame_bytes_in count=3 sum=210 le64=1 le1024=3 inf=3
//! ```
//!
//! Histogram buckets are cumulative (`le<bound>` counts observations
//! `<= bound`, `inf` equals `count`). The header line is the format
//! version; parsers must ignore lines whose leading keyword they do not
//! recognize, so new metric kinds can be added compatibly.
//!
//! ## Usage
//!
//! ```
//! use cbs_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let pushes = registry.counter("server.pushes", "frames pushed");
//! pushes.inc();
//! pushes.add(2);
//! assert_eq!(pushes.get(), 3);
//! assert!(registry.render().contains("counter server.pushes 3"));
//! ```
//!
//! Most code uses the process-wide [`global`] registry instead of
//! constructing its own.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Whether a metric's value is reproducible for a deterministic
/// workload, or depends on wall-clock timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Pure event counts/sizes: identical across reruns of a
    /// deterministic workload, for any thread count.
    Deterministic,
    /// Wall-clock-derived values (e.g. latency histograms): excluded
    /// from deterministic renders and pinned-value tests.
    Wallclock,
}

/// A monotonically increasing event counter.
///
/// Cloning yields another handle to the same underlying cell.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (reads even while the registry is disabled).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (e.g. a table size published
/// at scrape time).
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    /// Upper bucket bounds, strictly increasing; an implicit `+inf`
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts;
    /// `len == bounds.len() + 1`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of integer observations (latencies in
/// microseconds, sizes in bytes, …).
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cells: Arc<HistogramCells>,
}

/// Power-of-four size buckets (bytes), 64 B … 16 MiB.
pub const SIZE_BUCKETS: &[u64] = &[
    64,
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
];

/// Latency buckets (microseconds), 50 µs … 1 s.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000, 1_000_000,
];

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let c = &self.cells;
        let idx = c.bounds.partition_point(|&b| b < v);
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }
}

/// One registered metric (name + help + stability + the live cells).
#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    stability: Stability,
    slot: Slot,
}

/// A set of metrics with named, idempotent registration and a
/// deterministic text exposition.
///
/// Registration is cold-path (a mutex-guarded name table); returned
/// handles are lock-free. Registering a name twice returns a handle to
/// the *same* cells, so `OnceLock`-style lazy handle structs are safe
/// even if two subsystems race to register.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Flips the kill switch: while disabled, every handle's
    /// `inc`/`add`/`set`/`observe` is a no-op (values are frozen, reads
    /// still work). Used by the inertness acceptance tests.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether handles currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        // Metric cells are plain atomics: they are valid after any
        // panic, so a poisoned registration table is safe to reuse.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register(&self, name: &str, stability: Stability, make: impl FnOnce(&Self) -> Slot) -> Slot {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return e.slot.clone();
        }
        let slot = make(self);
        entries.push(Entry {
            name: name.to_owned(),
            stability,
            slot: slot.clone(),
        });
        slot
    }

    /// Registers (or re-resolves) a deterministic counter.
    pub fn counter(&self, name: &str, _help: &str) -> Counter {
        match self.register(name, Stability::Deterministic, |r| {
            Slot::Counter(Counter {
                enabled: Arc::clone(&r.enabled),
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Slot::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Registers (or re-resolves) a gauge.
    pub fn gauge(&self, name: &str, _help: &str) -> Gauge {
        match self.register(name, Stability::Deterministic, |r| {
            Slot::Gauge(Gauge {
                enabled: Arc::clone(&r.enabled),
                cell: Arc::new(AtomicI64::new(0)),
            })
        }) {
            Slot::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Registers (or re-resolves) a histogram over `bounds` (strictly
    /// increasing upper bucket bounds; an `+inf` bucket is implicit).
    pub fn histogram(
        &self,
        name: &str,
        _help: &str,
        bounds: &[u64],
        stability: Stability,
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram `{name}`: bounds must be strictly increasing"
        );
        match self.register(name, stability, |r| {
            Slot::Histogram(Histogram {
                enabled: Arc::clone(&r.enabled),
                cells: Arc::new(HistogramCells {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }),
            })
        }) {
            Slot::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// A point-in-time copy of every registered metric's value.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.lock();
        let mut values = BTreeMap::new();
        for e in entries.iter() {
            let v = match &e.slot {
                Slot::Counter(c) => Value::Counter(c.get()),
                Slot::Gauge(g) => Value::Gauge(g.get()),
                Slot::Histogram(h) => Value::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    bounds: h.cells.bounds.clone(),
                    buckets: h
                        .cells
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                },
            };
            values.insert(
                e.name.clone(),
                SnapEntry {
                    stability: e.stability,
                    value: v,
                },
            );
        }
        Snapshot { values }
    }

    /// The growth since `base`: counters and histograms are subtracted
    /// (metrics absent from `base` count from zero); gauges keep their
    /// current value (a gauge delta is meaningless). Used for
    /// experiment-scoped metric blocks in a long-lived process.
    pub fn delta_since(&self, base: &Snapshot) -> Snapshot {
        let mut now = self.snapshot();
        for (name, entry) in &mut now.values {
            if let Some(prev) = base.values.get(name) {
                entry.value = entry.value.minus(&prev.value);
            }
        }
        now
    }

    /// The full versioned text exposition (see the module docs).
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// The process-wide registry every subsystem's static handles live in.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (non-cumulative buckets; `buckets.len() ==
    /// bounds.len() + 1`, the last being `+inf`).
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Upper bucket bounds.
        bounds: Vec<u64>,
        /// Per-bucket observation counts.
        buckets: Vec<u64>,
    },
}

impl Value {
    fn minus(&self, base: &Value) -> Value {
        match (self, base) {
            (Value::Counter(a), Value::Counter(b)) => Value::Counter(a.saturating_sub(*b)),
            (
                Value::Histogram {
                    count,
                    sum,
                    bounds,
                    buckets,
                },
                Value::Histogram {
                    count: c0,
                    sum: s0,
                    buckets: b0,
                    ..
                },
            ) => Value::Histogram {
                count: count.saturating_sub(*c0),
                sum: sum.saturating_sub(*s0),
                bounds: bounds.clone(),
                buckets: buckets
                    .iter()
                    .zip(b0.iter().chain(std::iter::repeat(&0)))
                    .map(|(a, b)| a.saturating_sub(*b))
                    .collect(),
            },
            // Gauges (and kind changes, which cannot happen through the
            // registry) keep the current value.
            _ => self.clone(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SnapEntry {
    stability: Stability,
    value: Value,
}

/// An immutable, name-sorted copy of a registry's metrics, comparable
/// and renderable. Produced by [`Registry::snapshot`] and
/// [`Registry::delta_since`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    values: BTreeMap<String, SnapEntry>,
}

impl Snapshot {
    /// The snapshot restricted to [`Stability::Deterministic`] metrics —
    /// the set safe to pin in tests and print in reproducible reports.
    #[must_use]
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .filter(|(_, e)| e.stability == Stability::Deterministic)
                .map(|(k, e)| (k.clone(), e.clone()))
                .collect(),
        }
    }

    /// The snapshot restricted to metrics whose name passes `keep`.
    #[must_use]
    pub fn filter(&self, mut keep: impl FnMut(&str) -> bool) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, e)| (k.clone(), e.clone()))
                .collect(),
        }
    }

    /// The snapshot without gauges. Gauges carry scrape-time
    /// instantaneous values, so they are meaningless inside an
    /// experiment-scoped delta block; counters and histograms remain.
    #[must_use]
    pub fn without_gauges(&self) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .filter(|(_, e)| !matches!(e.value, Value::Gauge(_)))
                .map(|(k, e)| (k.clone(), e.clone()))
                .collect(),
        }
    }

    /// The snapshot without zero-valued counters and empty histograms
    /// (gauges are kept): the interesting subset of a delta.
    #[must_use]
    pub fn nonzero(&self) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .filter(|(_, e)| match &e.value {
                    Value::Counter(v) => *v != 0,
                    Value::Histogram { count, .. } => *count != 0,
                    Value::Gauge(_) => true,
                })
                .map(|(k, e)| (k.clone(), e.clone()))
                .collect(),
        }
    }

    /// A named counter's value (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name).map(|e| &e.value) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A named gauge's value (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.values.get(name).map(|e| &e.value) {
            Some(Value::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// `(count, sum)` of a named histogram (zeros when absent).
    pub fn histogram(&self, name: &str) -> (u64, u64) {
        match self.values.get(name).map(|e| &e.value) {
            Some(Value::Histogram { count, sum, .. }) => (*count, *sum),
            _ => (0, 0),
        }
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The versioned text exposition of this snapshot (sorted by name;
    /// see the module docs for the format).
    pub fn render(&self) -> String {
        let mut out = String::from("# cbs-telemetry v1\n");
        for (name, e) in &self.values {
            match &e.value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "counter {name} {v}");
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "gauge {name} {v}");
                }
                Value::Histogram {
                    count,
                    sum,
                    bounds,
                    buckets,
                } => {
                    let _ = write!(out, "histogram {name} count={count} sum={sum}");
                    let mut cum = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cum += b;
                        match bounds.get(i) {
                            Some(bound) => {
                                let _ = write!(out, " le{bound}={cum}");
                            }
                            None => {
                                let _ = write!(out, " inf={cum}");
                            }
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Parses one counter line of an exposition (`counter <name> <value>`)
/// — the scrape helper used by smoke scripts and tests.
pub fn parse_counter(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let mut parts = line.split_whitespace();
        (parts.next() == Some("counter") && parts.next() == Some(name))
            .then(|| parts.next()?.parse().ok())
            .flatten()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip_through_render() {
        let r = Registry::new();
        let c = r.counter("a.count", "events");
        let g = r.gauge("b.gauge", "level");
        let h = r.histogram("c.hist", "sizes", &[10, 100], Stability::Deterministic);
        c.add(3);
        g.set(-7);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let text = r.render();
        assert_eq!(
            text,
            "# cbs-telemetry v1\n\
             counter a.count 3\n\
             gauge b.gauge -7\n\
             histogram c.hist count=3 sum=555 le10=1 le100=2 inf=3\n"
        );
        assert_eq!(parse_counter(&text, "a.count"), Some(3));
        assert_eq!(parse_counter(&text, "missing"), None);
    }

    #[test]
    fn registration_is_idempotent_and_shares_cells() {
        let r = Registry::new();
        let a = r.counter("same", "");
        let b = r.counter("same", "");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().counter("same"), 2);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "");
        let _ = r.gauge("x", "");
    }

    #[test]
    fn kill_switch_freezes_values() {
        let r = Registry::new();
        let c = r.counter("k", "");
        let h = r.histogram("kh", "", &[1], Stability::Deterministic);
        c.inc();
        r.set_enabled(false);
        assert!(!r.is_enabled());
        c.add(100);
        h.observe(1);
        assert_eq!(c.get(), 1, "disabled handles are no-ops");
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn deltas_subtract_counters_and_histograms_but_not_gauges() {
        let r = Registry::new();
        let c = r.counter("c", "");
        let g = r.gauge("g", "");
        let h = r.histogram("h", "", &[10], Stability::Deterministic);
        c.add(5);
        g.set(5);
        h.observe(3);
        let base = r.snapshot();
        c.add(2);
        g.set(9);
        h.observe(30);
        let d = r.delta_since(&base);
        assert_eq!(d.counter("c"), 2);
        assert_eq!(d.gauge("g"), 9, "gauges stay absolute");
        assert_eq!(d.histogram("h"), (1, 30));
        // A metric registered after the base snapshot counts from zero.
        let late = r.counter("late", "");
        late.add(4);
        assert_eq!(r.delta_since(&base).counter("late"), 4);
    }

    #[test]
    fn stability_filter_drops_wallclock_metrics() {
        let r = Registry::new();
        let lat = r.histogram("lat", "", &[1], Stability::Wallclock);
        let c = r.counter("ok", "");
        lat.observe(9);
        c.inc();
        let det = r.snapshot().deterministic();
        assert_eq!(det.len(), 1);
        assert_eq!(det.counter("ok"), 1);
        assert!(!det.render().contains("lat"));
    }

    #[test]
    fn nonzero_filter_drops_idle_counters() {
        let r = Registry::new();
        let _idle = r.counter("idle", "");
        let busy = r.counter("busy", "");
        busy.inc();
        let nz = r.snapshot().nonzero();
        assert_eq!(nz.len(), 1);
        assert_eq!(nz.counter("busy"), 1);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = Registry::new();
        let _z = r.counter("z", "");
        let _a = r.counter("a", "");
        let rendered = r.render();
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        assert_eq!(lines, ["counter a 0", "counter z 0"]);
        assert_eq!(r.render(), r.render());
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let r = Registry::new();
        let c = r.counter("sum", "");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
