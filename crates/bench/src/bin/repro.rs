//! Regenerates every table and figure of Arnold & Grove (CGO 2005).
//!
//! ```text
//! repro [--scale <f64>] [--jobs <n|auto>] [artifact...]
//!
//! artifacts: table1 table2a table2b table3 figure1 figure5-jikes
//!            figure5-j9 inliner-ablation exhaustive-overhead patching
//!            frequency-sweep hardware context inline-depth shapes
//!            fleet fleet-optimize all (default; excludes the fleet
//!            artifacts)
//! ```
//!
//! `--scale 1.0` (default) runs benchmarks at the paper's running times
//! on the simulated clock; smaller scales give quicker, noisier versions.
//! `--jobs` shards each experiment's cells across worker threads; the
//! rendered artifacts are byte-identical for every value (serial
//! reduction order is preserved — see `cbs_core::parallel`).

use cbs_core::experiments::{
    context_sensitivity_with, exhaustive_overhead_with, figure1_demo, figure5_with,
    fleet_faults_with, fleet_optimize_with, fleet_with, frequency_sweep, hardware_vs_cbs_with,
    inline_depth_ablation_with, inliner_ablation_with, patching_vs_cbs_with, table1_with, table2,
    table3_with, workload_shapes_with, Table2Options,
};
use cbs_core::parallel::Parallelism;
use cbs_core::vm::VmFlavor;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut jobs = Parallelism::SERIAL;
    let mut faults = false;
    let mut seed = 0xCB5u64;
    let mut artifacts: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => faults = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an unsigned integer");
                    return ExitCode::FAILURE;
                }
            },
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale = v,
                None => {
                    eprintln!("--scale requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => jobs = v,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--jobs requires a positive integer or `auto`");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale <f64>] [--jobs <n|auto>] [--faults] [--seed <u64>] \
                     [table1|table2a|table2b|\
                     table3|figure1|figure5-jikes|figure5-j9|inliner-ablation|\
                     exhaustive-overhead|patching|frequency-sweep|hardware|context|\
                     inline-depth|shapes|fleet|fleet-optimize|all]\n\
                     --faults (fleet only): stream profiles through a deterministic \
                     fault-injecting transport seeded by --seed"
                );
                return ExitCode::SUCCESS;
            }
            other => artifacts.push(other.to_owned()),
        }
    }
    if artifacts.is_empty() {
        artifacts.push("all".to_owned());
    }

    for a in &artifacts {
        if let Err(e) = run(a, scale, jobs, faults, seed) {
            eprintln!("{a}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run(
    artifact: &str,
    scale: f64,
    jobs: Parallelism,
    faults: bool,
    seed: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let known = [
        "all",
        "table1",
        "table2a",
        "table2b",
        "table3",
        "figure1",
        "figure5-jikes",
        "figure5-j9",
        "inliner-ablation",
        "exhaustive-overhead",
        "patching",
        "frequency-sweep",
        "hardware",
        "context",
        "inline-depth",
        "shapes",
        "fleet",
        "fleet-optimize",
    ];
    if !known.contains(&artifact) {
        return Err(format!("unknown artifact `{artifact}`").into());
    }
    let all = artifact == "all";
    if all || artifact == "table1" {
        println!("{}", table1_with(scale, jobs)?.render());
    }
    if all || artifact == "table2a" {
        let opts = Table2Options {
            scale,
            flavor: VmFlavor::Jikes,
            jobs,
            ..Table2Options::default()
        };
        println!("{}", table2(&opts)?.render());
    }
    if all || artifact == "table2b" {
        let opts = Table2Options {
            scale,
            flavor: VmFlavor::J9,
            jobs,
            ..Table2Options::default()
        };
        println!("{}", table2(&opts)?.render());
    }
    if all || artifact == "table3" {
        println!("{}", table3_with(scale, None, jobs)?.render());
    }
    if all || artifact == "figure1" {
        println!("{}", figure1_demo(200, 100_000)?.render());
    }
    if all || artifact == "figure5-jikes" {
        println!(
            "{}",
            figure5_with(VmFlavor::Jikes, scale, None, jobs)?.render()
        );
    }
    if all || artifact == "figure5-j9" {
        println!(
            "{}",
            figure5_with(VmFlavor::J9, scale, None, jobs)?.render()
        );
    }
    if all || artifact == "inliner-ablation" {
        println!("{}", inliner_ablation_with(scale, None, jobs)?.render());
    }
    if all || artifact == "exhaustive-overhead" {
        println!("{}", exhaustive_overhead_with(scale, None, jobs)?.render());
    }
    if all || artifact == "patching" {
        println!("{}", patching_vs_cbs_with(scale, None, jobs)?.render());
    }
    if all || artifact == "frequency-sweep" {
        println!("{}", frequency_sweep()?.render());
    }
    if all || artifact == "hardware" {
        println!("{}", hardware_vs_cbs_with(scale, None, jobs)?.render());
    }
    if all || artifact == "context" {
        println!("{}", context_sensitivity_with(scale, None, jobs)?.render());
    }
    if all || artifact == "inline-depth" {
        println!(
            "{}",
            inline_depth_ablation_with(scale, None, jobs)?.render()
        );
    }
    if all || artifact == "shapes" {
        println!("{}", workload_shapes_with(scale, jobs)?.render());
    }
    // Not part of `all`: the fleet experiment postdates the pinned
    // repro_output.txt and is requested explicitly.
    if artifact == "fleet" {
        // The metrics block is printed *next to* the experiment render,
        // never inside it: the render stays bit-identical with telemetry
        // on or off, and across job counts.
        let telemetry_base = cbs_core::telemetry::global().snapshot();
        if faults {
            println!("{}", fleet_faults_with(scale, jobs, seed)?.render());
        } else {
            println!("{}", fleet_with(scale, jobs)?.render());
        }
        // Deterministic counters only: wall-clock histograms and
        // scrape-time gauges are excluded, so this block is identical
        // across reruns (counters are additive, hence jobs-invariant).
        let delta = cbs_core::telemetry::global()
            .delta_since(&telemetry_base)
            .deterministic()
            .without_gauges()
            .nonzero();
        println!("== fleet telemetry (deterministic counters) ==");
        print!("{}", delta.render());
    }
    // Not part of `all` for the same reason as `fleet`.
    if artifact == "fleet-optimize" {
        let telemetry_base = cbs_core::telemetry::global().snapshot();
        println!("{}", fleet_optimize_with(scale, jobs)?.render());
        let delta = cbs_core::telemetry::global()
            .delta_since(&telemetry_base)
            .deterministic()
            .without_gauges()
            .nonzero();
        println!("== fleet-optimize telemetry (deterministic counters) ==");
        print!("{}", delta.render());
    }
    Ok(())
}
