//! Offline profile tooling: compare, characterize and visualize
//! serialized dynamic call graphs (the `cbs-dcg v1` text format).
//!
//! ```text
//! dcgtool collect <benchmark> <small|large> <out.dcg> [stride samples]
//! dcgtool compare <a.dcg> <b.dcg>        # overlap percentage
//! dcgtool shape   <a.dcg>                # distribution statistics
//! dcgtool dot     <a.dcg> [max_edges]    # DOT digraph on stdout
//! ```

use cbs_core::dcg::{dot, overlap, serialize, stats};
use cbs_core::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dcgtool: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<cbs_core::dcg::DynamicCallGraph, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(serialize::from_text(&text)?)
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match args.first().map(String::as_str) {
        Some("collect") => {
            let bench_name = args.get(1).ok_or("collect needs a benchmark name")?;
            let size = match args.get(2).map(String::as_str) {
                Some("small") => InputSize::Small,
                Some("large") => InputSize::Large,
                _ => return Err("size must be `small` or `large`".into()),
            };
            let out = args.get(3).ok_or("collect needs an output path")?;
            let stride = args.get(4).map_or(Ok(3), |s| s.parse())?;
            let samples = args.get(5).map_or(Ok(16), |s| s.parse())?;
            let bench = Benchmark::all()
                .into_iter()
                .find(|b| b.name() == bench_name)
                .ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
            let program = bench.build(size)?;
            let m = measure(
                &program,
                VmConfig::default(),
                vec![Box::new(CounterBasedSampler::new(CbsConfig::new(
                    stride, samples,
                )))],
            )?;
            std::fs::write(out, serialize::to_text(&m.outcomes[0].dcg))?;
            eprintln!(
                "wrote {out}: {} edges, accuracy {:.1}%, overhead {:.3}%",
                m.outcomes[0].dcg.num_edges(),
                m.outcomes[0].accuracy,
                m.outcomes[0].overhead_pct
            );
            Ok(())
        }
        Some("compare") => {
            let a = load(args.get(1).ok_or("compare needs two paths")?)?;
            let b = load(args.get(2).ok_or("compare needs two paths")?)?;
            println!("{:.2}", overlap(&a, &b));
            Ok(())
        }
        Some("shape") => {
            let g = load(args.get(1).ok_or("shape needs a path")?)?;
            let s = stats::shape(&g);
            println!(
                "edges={} top_decile_share={:.3} edges_for_90pct={} gini={:.3}",
                s.edges, s.top_decile_share, s.edges_for_90pct, s.gini
            );
            Ok(())
        }
        Some("dot") => {
            let g = load(args.get(1).ok_or("dot needs a path")?)?;
            let max_edges = args.get(2).map_or(Ok(64), |s| s.parse())?;
            print!(
                "{}",
                dot::to_dot(
                    &g,
                    None,
                    &dot::DotOptions {
                        max_edges,
                        ..Default::default()
                    }
                )
            );
            Ok(())
        }
        _ => Err("usage: dcgtool collect|compare|shape|dot …".into()),
    }
}
