//! Offline profile tooling: compare, characterize, convert and ship
//! serialized dynamic call graphs (the `cbs-dcg v1` text format and the
//! `cbs-profiled` binary wire format).
//!
//! ```text
//! dcgtool collect <benchmark> <small|large> <out.dcg> [stride samples]
//! dcgtool collect-all <dir> [--jobs <n|auto>] [stride samples]
//! dcgtool merge   <out.dcg> <in.dcg>...   # deterministic shard merge
//! dcgtool compare <a.dcg> <b.dcg>         # overlap percentage
//! dcgtool shape   <a.dcg>                 # distribution statistics
//! dcgtool dot     <a.dcg> [max_edges]     # DOT digraph on stdout
//! dcgtool convert <in> <out> [--to text|binary]  # text v1 <-> binary
//! dcgtool push    <host:port> <profile>...       # send to a profiled server
//! dcgtool pull    <host:port> <out>              # fetch merged fleet profile
//! dcgtool plan    <host:port>                    # fetch + render fleet inlining plan
//! dcgtool stats   <host:port>                    # ingestion + dedup counters
//! dcgtool metrics <host:port>                    # telemetry text exposition
//! dcgtool store inspect <dir>                    # durable-store summary
//! dcgtool store compact <dir> [--shards <n>] [--decay <f64>]
//!                       [--min-weight <f64>]     # checkpoint + truncate WAL
//! ```
//!
//! `collect-all` profiles the whole suite (small inputs), sharding
//! benchmarks across `--jobs` worker threads; the written profiles are
//! identical for every jobs value.
//!
//! `convert`/`push`/`pull` accept either format on input (binary frames
//! are sniffed by their `CBSP` magic); `convert` picks the output format
//! from the extension (`.dcgb` → binary) unless `--to` overrides it.
//!
//! `push`/`pull` take resilient-transport flags; any of them switches
//! from the plain one-connection client to the reconnecting
//! [`ResilientClient`] (exactly-once sequenced pushes, chunked pulls):
//!
//! ```text
//! --retries <n>      attempts per operation before giving up (default 16)
//! --backoff-ms <n>   base reconnect backoff, doubling per retry (default 25)
//! --seed <u64>       backoff-jitter seed (default 0x5EED)
//! --faults <seed>    route the connection through the deterministic
//!                    fault injector seeded here (testing/demos)
//! --fault-rate <f>   injected fault probability per exchange (default 0.25)
//! ```

use cbs_core::dcg::{dot, overlap, serialize, stats, DynamicCallGraph};
use cbs_core::parallel::{run_cells, Parallelism};
use cbs_core::prelude::*;
use cbs_core::profiled::{
    AggregatorConfig, DcgCodec, FaultSchedule, NetConfig, ProfileClient, ResilientClient,
    RetryPolicy, ShardedAggregator,
};
use cbs_core::store::{inspect, ProfileStore, StoreConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dcgtool: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<DynamicCallGraph, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(serialize::from_text(&text)?)
}

/// Loads a profile in either format, sniffing binary frames by magic.
fn load_any(path: &str) -> Result<DynamicCallGraph, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    if bytes.starts_with(b"CBSP") {
        Ok(DcgCodec::decode(&bytes)
            .map_err(|e| format!("{path}: {e}"))?
            .to_graph())
    } else {
        Ok(serialize::from_text(std::str::from_utf8(&bytes).map_err(
            |_| format!("{path}: neither CBSP binary nor UTF-8 text"),
        )?)?)
    }
}

/// Output format of `convert`.
#[derive(PartialEq)]
enum Format {
    Text,
    Binary,
}

fn format_for(path: &str, explicit: Option<&str>) -> Result<Format, Box<dyn std::error::Error>> {
    match explicit {
        Some("text") => Ok(Format::Text),
        Some("binary") => Ok(Format::Binary),
        Some(other) => Err(format!("--to must be `text` or `binary`, got `{other}`").into()),
        None if path.ends_with(".dcgb") => Ok(Format::Binary),
        None => Ok(Format::Text),
    }
}

fn collect_one(
    bench: Benchmark,
    size: InputSize,
    stride: u32,
    samples: u32,
) -> Result<(DynamicCallGraph, f64, f64), Box<dyn std::error::Error + Send + Sync>> {
    let program = bench.build(size)?;
    let mut m = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(
            stride, samples,
        )))],
    )?;
    let o = m.outcomes.remove(0);
    Ok((o.dcg, o.accuracy, o.overhead_pct))
}

/// Resilient-transport options shared by `push` and `pull`. Passing any
/// of them opts into the reconnecting client.
struct TransportOpts {
    retries: Option<u32>,
    backoff_ms: Option<u64>,
    seed: Option<u64>,
    faults: Option<u64>,
    fault_rate: f64,
}

impl TransportOpts {
    fn resilient(&self) -> bool {
        self.retries.is_some()
            || self.backoff_ms.is_some()
            || self.seed.is_some()
            || self.faults.is_some()
    }

    fn policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.retries.unwrap_or(16).max(1),
            base_backoff: Duration::from_millis(self.backoff_ms.unwrap_or(25)),
            seed: self.seed.unwrap_or(0x5EED),
            ..RetryPolicy::default()
        }
    }
}

/// Splits `--retries/--backoff-ms/--seed/--faults/--fault-rate` out of
/// `args`, returning the remaining positional arguments.
fn split_transport_flags(
    args: &[String],
) -> Result<(Vec<&String>, TransportOpts), Box<dyn std::error::Error>> {
    let mut opts = TransportOpts {
        retries: None,
        backoff_ms: None,
        seed: None,
        faults: None,
        fault_rate: 0.25,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{flag} requires a value").into())
        };
        match a.as_str() {
            "--retries" => opts.retries = Some(value("--retries")?.parse()?),
            "--backoff-ms" => opts.backoff_ms = Some(value("--backoff-ms")?.parse()?),
            "--seed" => opts.seed = Some(value("--seed")?.parse()?),
            "--faults" => opts.faults = Some(value("--faults")?.parse()?),
            "--fault-rate" => opts.fault_rate = value("--fault-rate")?.parse()?,
            _ => positional.push(a),
        }
    }
    Ok((positional, opts))
}

/// Pushes each profile's edges as an exactly-once sequenced delta
/// through the resilient client, then reports delivery stats.
fn resilient_push<S: std::io::Read + std::io::Write>(
    client: &mut ResilientClient<S>,
    paths: &[&String],
) -> Result<(), Box<dyn std::error::Error>> {
    for path in paths {
        let g = load_any(path)?;
        client.push_delta(g.iter().map(|(e, w)| (*e, w)).collect())?;
        eprintln!("pushed {path}");
    }
    client.flush()?;
    eprintln!("{}", client.stats_text()?.trim_end());
    let s = client.stats();
    eprintln!(
        "transport: connects={} reconnects={} retries={} duplicates={}",
        s.connects, s.reconnects, s.retries, s.duplicates
    );
    Ok(())
}

/// Pulls the merged snapshot through the resilient client (paged, so
/// snapshots beyond the frame limit still arrive) and writes it out.
fn resilient_pull<S: std::io::Read + std::io::Write>(
    client: &mut ResilientClient<S>,
    out: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let (merged, pages) = client.pull_counted()?;
    match format_for(out, None)? {
        Format::Text => std::fs::write(out, serialize::to_text(&merged))?,
        Format::Binary => std::fs::write(out, DcgCodec::encode_snapshot(&merged))?,
    }
    let s = client.stats();
    eprintln!(
        "wrote {out}: {} edges, total weight {}, {pages} page(s); \
         transport: reconnects={} retries={}",
        merged.num_edges(),
        merged.total_weight(),
        s.reconnects,
        s.retries
    );
    Ok(())
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match args.first().map(String::as_str) {
        Some("collect") => {
            let bench_name = args.get(1).ok_or("collect needs a benchmark name")?;
            let size = match args.get(2).map(String::as_str) {
                Some("small") => InputSize::Small,
                Some("large") => InputSize::Large,
                _ => return Err("size must be `small` or `large`".into()),
            };
            let out = args.get(3).ok_or("collect needs an output path")?;
            let stride = args.get(4).map_or(Ok(3), |s| s.parse())?;
            let samples = args.get(5).map_or(Ok(16), |s| s.parse())?;
            let bench = Benchmark::all()
                .into_iter()
                .find(|b| b.name() == bench_name)
                .ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
            let (dcg, accuracy, overhead) = collect_one(bench, size, stride, samples)
                .map_err(|e| -> Box<dyn std::error::Error> { e })?;
            std::fs::write(out, serialize::to_text(&dcg))?;
            eprintln!(
                "wrote {out}: {} edges, accuracy {accuracy:.1}%, overhead {overhead:.3}%",
                dcg.num_edges(),
            );
            Ok(())
        }
        Some("collect-all") => {
            let dir = args.get(1).ok_or("collect-all needs an output directory")?;
            let mut jobs = Parallelism::SERIAL;
            let mut rest: Vec<&String> = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                if a == "--jobs" || a == "-j" {
                    jobs = it
                        .next()
                        .ok_or("--jobs requires a positive integer or `auto`")?
                        .parse()?;
                } else {
                    rest.push(a);
                }
            }
            let stride: u32 = rest.first().map_or(Ok(3), |s| s.parse())?;
            let samples: u32 = rest.get(1).map_or(Ok(16), |s| s.parse())?;
            std::fs::create_dir_all(dir)?;
            let profiles = run_cells(Benchmark::all().to_vec(), jobs, |bench| {
                collect_one(bench, InputSize::Small, stride, samples)
                    .map(|(dcg, accuracy, _)| (bench, dcg, accuracy))
            })
            .map_err(|e| e.to_string())?;
            for (bench, dcg, accuracy) in profiles {
                let path = format!("{dir}/{}.dcg", bench.name());
                std::fs::write(&path, serialize::to_text(&dcg))?;
                eprintln!(
                    "wrote {path}: {} edges, accuracy {accuracy:.1}%",
                    dcg.num_edges()
                );
            }
            Ok(())
        }
        Some("merge") => {
            let out = args.get(1).ok_or("merge needs an output path")?;
            if args.len() < 3 {
                return Err("merge needs at least one input profile".into());
            }
            let shards = args[2..]
                .iter()
                .map(|p| load(p))
                .collect::<Result<Vec<_>, _>>()?;
            let merged = DynamicCallGraph::merge_all(&shards);
            std::fs::write(out, serialize::to_text(&merged))?;
            eprintln!(
                "wrote {out}: {} edges from {} shards, total weight {}",
                merged.num_edges(),
                shards.len(),
                merged.total_weight()
            );
            Ok(())
        }
        Some("compare") => {
            let a = load(args.get(1).ok_or("compare needs two paths")?)?;
            let b = load(args.get(2).ok_or("compare needs two paths")?)?;
            println!("{:.2}", overlap(&a, &b));
            Ok(())
        }
        Some("shape") => {
            let g = load(args.get(1).ok_or("shape needs a path")?)?;
            let s = stats::shape(&g);
            println!(
                "edges={} top_decile_share={:.3} edges_for_90pct={} gini={:.3}",
                s.edges, s.top_decile_share, s.edges_for_90pct, s.gini
            );
            Ok(())
        }
        Some("dot") => {
            let g = load(args.get(1).ok_or("dot needs a path")?)?;
            let max_edges = args.get(2).map_or(Ok(64), |s| s.parse())?;
            print!(
                "{}",
                dot::to_dot(
                    &g,
                    None,
                    &dot::DotOptions {
                        max_edges,
                        ..Default::default()
                    }
                )
            );
            Ok(())
        }
        Some("convert") => {
            let input = args.get(1).ok_or("convert needs an input path")?;
            let out = args.get(2).ok_or("convert needs an output path")?;
            let explicit = match args.get(3).map(String::as_str) {
                Some("--to") => Some(
                    args.get(4)
                        .ok_or("--to requires `text` or `binary`")?
                        .as_str(),
                ),
                Some(other) => return Err(format!("unknown flag `{other}`").into()),
                None => None,
            };
            let g = load_any(input)?;
            match format_for(out, explicit)? {
                Format::Text => std::fs::write(out, serialize::to_text(&g))?,
                Format::Binary => std::fs::write(out, DcgCodec::encode_snapshot(&g))?,
            }
            eprintln!("wrote {out}: {} edges", g.num_edges());
            Ok(())
        }
        Some("push") => {
            let (positional, opts) = split_transport_flags(&args[1..])?;
            let addr = positional.first().ok_or("push needs a server address")?;
            let paths = &positional[1..];
            if paths.is_empty() {
                return Err("push needs at least one profile".into());
            }
            if let Some(fault_seed) = opts.faults {
                let schedule = FaultSchedule::seeded(fault_seed, opts.fault_rate).shared();
                let mut client = ResilientClient::connect_faulty(
                    addr.as_str(),
                    NetConfig::default(),
                    opts.policy(),
                    fault_seed,
                    schedule,
                );
                resilient_push(&mut client, paths)
            } else if opts.resilient() {
                let mut client = ResilientClient::connect_tcp(
                    addr.as_str(),
                    NetConfig::default(),
                    opts.policy(),
                    opts.seed.unwrap_or(0x5EED),
                );
                resilient_push(&mut client, paths)
            } else {
                let mut client = ProfileClient::connect(addr.as_str(), NetConfig::default())?;
                for path in paths {
                    // Binary files are pushed verbatim (preserving
                    // snapshot vs delta kind); text profiles go up as
                    // snapshots.
                    let bytes = std::fs::read(path)?;
                    if bytes.starts_with(b"CBSP") {
                        client.push_frame(&bytes)?;
                    } else {
                        client.push_snapshot(&load(path)?)?;
                    }
                    eprintln!("pushed {path}");
                }
                eprintln!("{}", client.stats_text()?.trim_end());
                Ok(())
            }
        }
        Some("stats") => {
            let addr = args.get(1).ok_or("stats needs a server address")?;
            let mut client = ProfileClient::connect(addr.as_str(), NetConfig::default())?;
            let text = client.stats_text()?;
            print!("{text}");
            // v2 servers report the dedup-table size and the epoch; call
            // out epoch drift hints for humans scanning the output.
            let field = |key: &str| {
                text.lines()
                    .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
            };
            if field("stats_version").is_none() {
                eprintln!("note: v1 server (no dedup/epoch drift fields)");
            }
            Ok(())
        }
        Some("metrics") => {
            let (positional, opts) = split_transport_flags(&args[1..])?;
            let addr = positional.first().ok_or("metrics needs a server address")?;
            let text = if opts.resilient() {
                let mut client = ResilientClient::connect_tcp(
                    addr.as_str(),
                    NetConfig::default(),
                    opts.policy(),
                    opts.seed.unwrap_or(0x5EED),
                );
                client.metrics_text()?
            } else {
                let mut client = ProfileClient::connect(addr.as_str(), NetConfig::default())?;
                client.metrics_text()?
            };
            print!("{text}");
            Ok(())
        }
        Some("pull") => {
            let (positional, opts) = split_transport_flags(&args[1..])?;
            let addr = positional.first().ok_or("pull needs a server address")?;
            let out = positional.get(1).ok_or("pull needs an output path")?;
            if let Some(fault_seed) = opts.faults {
                let schedule = FaultSchedule::seeded(fault_seed, opts.fault_rate).shared();
                let mut client = ResilientClient::connect_faulty(
                    addr.as_str(),
                    NetConfig::default(),
                    opts.policy(),
                    fault_seed,
                    schedule,
                );
                resilient_pull(&mut client, out)
            } else if opts.resilient() {
                let mut client = ResilientClient::connect_tcp(
                    addr.as_str(),
                    NetConfig::default(),
                    opts.policy(),
                    opts.seed.unwrap_or(0x5EED),
                );
                resilient_pull(&mut client, out)
            } else {
                let mut client = ProfileClient::connect(addr.as_str(), NetConfig::default())?;
                let merged = client.pull()?;
                match format_for(out, None)? {
                    Format::Text => std::fs::write(out, serialize::to_text(&merged))?,
                    Format::Binary => std::fs::write(out, DcgCodec::encode_snapshot(&merged))?,
                }
                eprintln!(
                    "wrote {out}: {} edges, total weight {}",
                    merged.num_edges(),
                    merged.total_weight()
                );
                Ok(())
            }
        }
        Some("plan") => {
            let (positional, opts) = split_transport_flags(&args[1..])?;
            let addr = positional.first().ok_or("plan needs a server address")?;
            // The fleet plan: NewLinearPolicy + the 40% rule run
            // server-side against the merged snapshot. Rendered as the
            // deterministic `cbs-inline-plan v1` text format.
            let plan = if opts.resilient() {
                let mut client = ResilientClient::connect_tcp(
                    addr.as_str(),
                    NetConfig::default(),
                    opts.policy(),
                    opts.seed.unwrap_or(0x5EED),
                );
                client.pull_plan()?
            } else {
                let mut client = ProfileClient::connect(addr.as_str(), NetConfig::default())?;
                client.pull_plan()?
            };
            print!("{}", plan.render());
            Ok(())
        }
        Some("store") => run_store(&args[1..]),
        _ => Err(
            "usage: dcgtool collect|collect-all|merge|compare|shape|dot|convert|push|pull|plan|stats|metrics|store …"
                .into(),
        ),
    }
}

/// The `store inspect|compact` subcommands: offline views and
/// maintenance of a `--data-dir` directory (run them against a stopped
/// server — the store is single-writer).
fn run_store(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match args.first().map(String::as_str) {
        Some("inspect") => {
            let dir = args.get(1).ok_or("store inspect needs a directory")?;
            let report = inspect(std::path::Path::new(dir))?;
            match &report.checkpoint {
                Some(c) => println!(
                    "checkpoint: epoch={} frames={} records={} dedup_clients={} \
                     snapshot_bytes={} wal_seq={}",
                    c.epoch, c.frames, c.records, c.dedup_clients, c.snapshot_bytes, c.wal_seq
                ),
                None => println!("checkpoint: none"),
            }
            for s in &report.segments {
                println!(
                    "segment {:#018x}: bytes={} frames={} seq_frames={} epochs={}{}",
                    s.seq,
                    s.bytes,
                    s.frames,
                    s.seq_frames,
                    s.epochs,
                    if s.corrupt { " CORRUPT-TAIL" } else { "" }
                );
            }
            println!(
                "tail: {} frame(s) across {} segment(s) would replay on open",
                report.tail_frames(),
                report.segments.len()
            );
            Ok(())
        }
        Some("compact") => {
            let mut agg_config = AggregatorConfig::default();
            let mut dir: Option<&String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| -> Result<&String, Box<dyn std::error::Error>> {
                    it.next()
                        .ok_or_else(|| format!("{flag} requires a value").into())
                };
                match a.as_str() {
                    "--shards" => agg_config.shards = value("--shards")?.parse()?,
                    "--decay" => agg_config.decay_factor = value("--decay")?.parse()?,
                    "--min-weight" => agg_config.min_weight = value("--min-weight")?.parse()?,
                    _ if dir.is_none() => dir = Some(a),
                    other => return Err(format!("unknown flag `{other}`").into()),
                }
            }
            let dir = dir.ok_or("store compact needs a directory")?;
            // Recover the directory (replaying the WAL tail), then
            // checkpoint: the subsumed segments are deleted and the next
            // open replays nothing. Aggregator geometry must match the
            // server's so the checkpointed snapshot is the bytes the
            // server would serve.
            let aggregator = Arc::new(ShardedAggregator::new(agg_config));
            let store = ProfileStore::open(dir.as_str(), aggregator, StoreConfig::default())?;
            let r = store.recovery_report().clone();
            store.checkpoint_now()?;
            let stats = store.aggregator().stats();
            eprintln!(
                "compacted {dir}: replayed {} frame(s), checkpoint at epoch {} \
                 ({} frames, {} records)",
                r.replayed_frames, stats.epoch, stats.frames, stats.records
            );
            if r.truncated_tail {
                eprintln!("note: a torn WAL tail was truncated during recovery");
            }
            Ok(())
        }
        _ => Err("usage: dcgtool store inspect|compact <dir> …".into()),
    }
}
