//! The profile-ingestion daemon: serves a [`ShardedAggregator`] over
//! TCP for a fleet of VMs, optionally backed by the durable store.
//!
//! ```text
//! profiled [--addr <host:port>] [--shards <n>] [--decay <f64>]
//!          [--min-weight <f64>] [--max-frame-bytes <n>] [--max-inflight <n>]
//!          [--dedup-cap <n>]
//!          [--data-dir <dir>] [--checkpoint-every <frames>]
//!          [--fsync always|never|<n>] [--group-commit <max-batch>[,<max-wait-us>]]
//! ```
//!
//! Binds `--addr` (default `127.0.0.1:0`, an OS-assigned port), prints
//! one line `listening <addr>` on stdout so scripts can discover the
//! port, then serves until killed. Push profiles with `dcgtool push`,
//! read the merged fleet profile back with `dcgtool pull`.
//!
//! With `--data-dir`, every accepted push is appended to a write-ahead
//! log before it is acknowledged and the directory is recovered on
//! startup — a `recovered ...` line (printed before `listening`)
//! reports what came back. `--fsync` picks the durability/throughput
//! trade (`always` per-ack, `never`, or sync every `<n>` appends);
//! `--checkpoint-every` bounds replay time by checkpointing after that
//! many applied frames. Under `--fsync always` concurrent pushers
//! share one fsync per batch; `--group-commit` caps how many acks one
//! sync may cover and how long a sync leader waits for the batch to
//! fill (default `64`, no wait).
//!
//! [`ShardedAggregator`]: cbs_core::profiled::ShardedAggregator

use cbs_core::profiled::{
    serve_with, AggregatorConfig, NetConfig, ServerConfig, ShardedAggregator,
};
use cbs_core::store::{FsyncPolicy, GroupCommitConfig, ProfileStore, StoreConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("profiled: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_owned();
    let mut agg_config = AggregatorConfig::default();
    let mut net_config = NetConfig::default();
    let mut store_config = StoreConfig::default();
    let mut data_dir: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} requires a value"));
        match a.as_str() {
            "--addr" => addr = value("--addr")?,
            "--shards" => agg_config.shards = value("--shards")?.parse()?,
            "--decay" => agg_config.decay_factor = value("--decay")?.parse()?,
            "--min-weight" => agg_config.min_weight = value("--min-weight")?.parse()?,
            "--max-frame-bytes" => {
                net_config.max_frame_bytes = value("--max-frame-bytes")?.parse()?
            }
            "--max-inflight" => net_config.max_inflight = value("--max-inflight")?.parse()?,
            "--dedup-cap" => store_config.dedup_capacity = value("--dedup-cap")?.parse()?,
            "--data-dir" => data_dir = Some(value("--data-dir")?),
            "--checkpoint-every" => {
                store_config.checkpoint_every = value("--checkpoint-every")?.parse()?
            }
            "--fsync" => store_config.fsync = value("--fsync")?.parse::<FsyncPolicy>()?,
            "--group-commit" => {
                store_config.group_commit = value("--group-commit")?.parse::<GroupCommitConfig>()?
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: profiled [--addr <host:port>] [--shards <n>] [--decay <f64>] \
                     [--min-weight <f64>] [--max-frame-bytes <n>] [--max-inflight <n>] \
                     [--dedup-cap <n>] [--data-dir <dir>] [--checkpoint-every <frames>] \
                     [--fsync always|never|<n>] [--group-commit <max-batch>[,<max-wait-us>]]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`").into()),
        }
    }

    let aggregator = Arc::new(ShardedAggregator::new(agg_config));
    let mut server_config = ServerConfig {
        net: net_config,
        dedup_capacity: store_config.dedup_capacity,
        journal: None,
    };
    if let Some(dir) = data_dir {
        let store = ProfileStore::open(dir.as_str(), Arc::clone(&aggregator), store_config)?;
        let r = store.recovery_report();
        println!(
            "recovered frames={} records={} epochs={} checkpoint_epoch={} truncated_tail={}",
            r.replayed_frames,
            r.replayed_records,
            r.replayed_epochs,
            r.checkpoint_epoch
                .map_or_else(|| "none".to_owned(), |e| e.to_string()),
            r.truncated_tail,
        );
        server_config.journal = Some(Arc::new(store));
    }
    let server = serve_with(addr.as_str(), aggregator, server_config)?;
    println!("listening {}", server.addr());
    std::io::stdout().flush()?;
    // Serve until killed: the accept loop runs on its own thread, so
    // park this one instead of spinning.
    loop {
        std::thread::park();
    }
}
