//! The profile-ingestion daemon: serves a [`ShardedAggregator`] over
//! TCP for a fleet of VMs.
//!
//! ```text
//! profiled [--addr <host:port>] [--shards <n>] [--decay <f64>]
//!          [--min-weight <f64>] [--max-frame-bytes <n>] [--max-inflight <n>]
//! ```
//!
//! Binds `--addr` (default `127.0.0.1:0`, an OS-assigned port), prints
//! one line `listening <addr>` on stdout so scripts can discover the
//! port, then serves until killed. Push profiles with `dcgtool push`,
//! read the merged fleet profile back with `dcgtool pull`.
//!
//! [`ShardedAggregator`]: cbs_core::profiled::ShardedAggregator

use cbs_core::profiled::{serve, AggregatorConfig, NetConfig, ShardedAggregator};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("profiled: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_owned();
    let mut agg_config = AggregatorConfig::default();
    let mut net_config = NetConfig::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} requires a value"));
        match a.as_str() {
            "--addr" => addr = value("--addr")?,
            "--shards" => agg_config.shards = value("--shards")?.parse()?,
            "--decay" => agg_config.decay_factor = value("--decay")?.parse()?,
            "--min-weight" => agg_config.min_weight = value("--min-weight")?.parse()?,
            "--max-frame-bytes" => {
                net_config.max_frame_bytes = value("--max-frame-bytes")?.parse()?
            }
            "--max-inflight" => net_config.max_inflight = value("--max-inflight")?.parse()?,
            "--help" | "-h" => {
                eprintln!(
                    "usage: profiled [--addr <host:port>] [--shards <n>] [--decay <f64>] \
                     [--min-weight <f64>] [--max-frame-bytes <n>] [--max-inflight <n>]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`").into()),
        }
    }

    let aggregator = Arc::new(ShardedAggregator::new(agg_config));
    let server = serve(addr.as_str(), aggregator, net_config)?;
    println!("listening {}", server.addr());
    std::io::stdout().flush()?;
    // Serve until killed: the accept loop runs on its own thread, so
    // park this one instead of spinning.
    loop {
        std::thread::park();
    }
}
