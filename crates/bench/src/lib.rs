//! A minimal wall-clock benchmark harness.
//!
//! The build environment is offline, so the workspace cannot depend on
//! `criterion`; this module provides the small subset the benches need —
//! named timed runs with warmup, min/median/mean reporting, and grouped
//! output — on top of `std::time::Instant`. Benches are ordinary
//! `harness = false` binaries: run them with `cargo bench`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::{Duration, Instant};

/// Returns `true` when benches run in smoke mode (`CBS_BENCH_SMOKE=1`).
///
/// `scripts/verify.sh --bench-smoke` sets the variable so every bench
/// binary compiles and executes end-to-end in CI on a tiny budget:
/// [`BenchGroup`] clamps itself to one timed iteration with no warmup,
/// and benches should skip wall-clock *assertions* (timings on a loaded
/// CI host are noise) and artifact writes while still exercising every
/// code path.
pub fn smoke_mode() -> bool {
    std::env::var_os("CBS_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Result of one named benchmark: per-iteration wall times.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Per-iteration durations, in run order.
    pub times: Vec<Duration>,
}

impl BenchResult {
    /// Fastest iteration.
    pub fn min(&self) -> Duration {
        self.times.iter().copied().min().unwrap_or_default()
    }

    /// Median iteration (lower middle for even counts).
    pub fn median(&self) -> Duration {
        let mut v = self.times.clone();
        v.sort_unstable();
        v.get(v.len() / 2).copied().unwrap_or_default()
    }

    /// Mean iteration time.
    pub fn mean(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.iter().sum::<Duration>() / self.times.len() as u32
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks with shared iteration counts.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    warmup: u32,
    iters: u32,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// Creates a group running `iters` timed iterations per bench after
    /// one warmup iteration.
    ///
    /// Under [`smoke_mode`] the group clamps to a single timed iteration
    /// with no warmup, whatever `iters` says.
    pub fn new(name: &str, iters: u32) -> Self {
        let (warmup, iters) = if smoke_mode() {
            (0, 1)
        } else {
            (1, iters.max(1))
        };
        eprintln!("== bench group `{name}` ({iters} iters) ==");
        Self {
            name: name.to_owned(),
            warmup,
            iters,
            results: Vec::new(),
        }
    }

    /// Sets the number of (untimed) warmup iterations.
    pub fn warmup(mut self, warmup: u32) -> Self {
        self.warmup = warmup;
        self
    }

    /// Times `f`, printing a summary line, and records the result.
    ///
    /// The closure's return value is passed through `std::hint::black_box`
    /// so the work cannot be optimized away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchResult {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        let result = BenchResult {
            name: format!("{}/{name}", self.name),
            times,
        };
        eprintln!(
            "{:<48} min {:>10}  median {:>10}  mean {:>10}",
            result.name,
            fmt_duration(result.min()),
            fmt_duration(result.median()),
            fmt_duration(result.mean()),
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All recorded results.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Finds a recorded result by its bench name (without group prefix).
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        let full = format!("{}/{name}", self.name);
        self.results.iter().find(|r| r.name == full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_reports() {
        let mut g = BenchGroup::new("unit", 3).warmup(0);
        let mut calls = 0u32;
        g.bench("counts", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3, "3 timed iterations, no warmup");
        let r = g.result("counts").expect("recorded");
        assert_eq!(r.times.len(), 3);
        assert!(r.min() <= r.median() && r.median() <= r.times.iter().copied().max().unwrap());
        assert!(g.result("missing").is_none());
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
