//! End-to-end tests of the `dcgtool` and `profiled` binaries: format
//! conversion round-trips and a loopback push/pull session.

use cbs_core::bytecode::{CallSiteId, MethodId};
use cbs_core::dcg::{serialize, CallEdge, DynamicCallGraph};
use std::io::{BufRead as _, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn dcgtool(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dcgtool"))
        .args(args)
        .output()
        .expect("dcgtool runs")
}

fn sample_graph() -> DynamicCallGraph {
    let mut g = DynamicCallGraph::new();
    // Mixed integral and fractional weights across several callers, so
    // the binary codec exercises both weight encodings.
    for (caller, site, callee, weight) in [
        (0u32, 0u32, 1u32, 10.0),
        (0, 1, 2, 5.25),
        (3, 0, 1, 100.0),
        (3, 0, 2, 0.125),
        (700_000, 9, 700_001, 1e9),
    ] {
        g.record(
            CallEdge::new(
                MethodId::new(caller),
                CallSiteId::new(site),
                MethodId::new(callee),
            ),
            weight,
        );
    }
    g
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cbs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }

    fn path(&self, file: &str) -> String {
        self.0.join(file).to_str().expect("utf-8 path").to_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn convert_text_binary_text_is_byte_identical() {
    let dir = TempDir::new("convert");
    let text = dir.path("a.dcg");
    let binary = dir.path("a.dcgb");
    let back = dir.path("a2.dcg");
    std::fs::write(&text, serialize::to_text(&sample_graph())).unwrap();

    let out = dcgtool(&["convert", &text, &binary]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        std::fs::read(&binary).unwrap().starts_with(b"CBSP"),
        ".dcgb extension selects the binary format"
    );
    let out = dcgtool(&["convert", &binary, &back]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    assert_eq!(
        std::fs::read(&text).unwrap(),
        std::fs::read(&back).unwrap(),
        "text -> binary -> text must be byte-identical"
    );
}

#[test]
fn convert_honors_explicit_format_flag() {
    let dir = TempDir::new("convert-flag");
    let text = dir.path("a.dcg");
    let odd = dir.path("a.bin"); // no .dcgb extension
    let back = dir.path("a2.dcg");
    std::fs::write(&text, serialize::to_text(&sample_graph())).unwrap();

    let out = dcgtool(&["convert", &text, &odd, "--to", "binary"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read(&odd).unwrap().starts_with(b"CBSP"));
    let out = dcgtool(&["convert", &odd, &back, "--to", "text"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&text).unwrap(), std::fs::read(&back).unwrap());

    let out = dcgtool(&["convert", &text, &odd, "--to", "sideways"]);
    assert!(!out.status.success(), "unknown format must fail");
}

/// Kills the server child even when an assertion panics mid-test.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server() -> (ServerGuard, String) {
    let child = Command::new(env!("CARGO_BIN_EXE_profiled"))
        .args(["--addr", "127.0.0.1:0", "--shards", "4"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("profiled spawns");
    let mut guard = ServerGuard(child);
    let stdout = guard.0.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("reads");
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .trim()
        .to_owned();
    (guard, addr)
}

#[test]
fn push_pull_round_trips_through_a_live_server() {
    let dir = TempDir::new("pushpull");
    let text = dir.path("profile.dcg");
    let binary = dir.path("profile.dcgb");
    let pulled = dir.path("merged.dcg");
    std::fs::write(&text, serialize::to_text(&sample_graph())).unwrap();
    let out = dcgtool(&["convert", &text, &binary]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let (_server, addr) = spawn_server();
    let out = dcgtool(&["push", &addr, &binary]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("frames=1"), "stats after push: {stderr}");

    let out = dcgtool(&["pull", &addr, &pulled]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&text).unwrap(),
        std::fs::read(&pulled).unwrap(),
        "one pushed snapshot pulls back byte-identical"
    );
    assert!(Path::new(&pulled).exists());
}

#[test]
fn store_compact_refuses_a_directory_held_by_a_live_server() {
    let dir = TempDir::new("lockheld");
    let data = dir.path("store");
    let child = Command::new(env!("CARGO_BIN_EXE_profiled"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            &data,
            "--fsync",
            "never",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("profiled spawns");
    let mut guard = ServerGuard(child);
    let stdout = guard.0.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    // A durable server prints `recovered …` before `listening …`.
    let mut line = String::new();
    while !line.starts_with("listening ") {
        line.clear();
        reader.read_line(&mut line).expect("reads banner");
        assert!(!line.is_empty(), "server exited before listening");
    }

    // The server holds the advisory lock; offline compaction must be
    // refused with a clear error instead of corrupting the live WAL.
    let out = dcgtool(&["store", "compact", &data]);
    assert!(!out.status.success(), "compact must fail on a live store");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("locked by running process"),
        "the error must name the holder: {stderr}"
    );

    // Killing the server leaves a stale lockfile of a dead pid, which
    // the next opener sweeps automatically.
    drop(guard);
    let out = dcgtool(&["store", "compact", &data]);
    assert!(
        out.status.success(),
        "compact works once the holder is gone: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
