//! Interpreter hot-path throughput: simulated cycles per wall-second.
//!
//! Compares the preserved pre-optimization interpreter
//! (`Vm::run_reference`, per-op method lookups and `dyn` dispatch) against
//! the optimized monomorphized path (`Vm::run_with`, cached code cursors,
//! superinstruction fusion, frame pooling, hoisted budget check) under the
//! NullProfiler, CBS, and exhaustive configurations, on two workload
//! shapes: loop-dominated (compress — dispatch is the whole cost, the
//! optimization target) and call-heavy (jess — call machinery shared by
//! both paths dilutes the ratio). Emits `BENCH_interp.json` at the repo
//! root and asserts the optimized NullProfiler path is at least 2x the
//! reference path on the loop-dominated workload (median of paired
//! interleaved rounds, which is robust to interference drift on shared
//! hosts) — both skipped under `CBS_BENCH_SMOKE` where timings are noise.

use std::time::Instant;

use cbs_bench::{smoke_mode, BenchGroup, BenchResult};
use cbs_core::prelude::*;
use cbs_core::vm::NullProfiler;

/// Simulated cycles per wall-second at the median iteration time.
fn rate(cycles: u64, r: &BenchResult) -> f64 {
    cycles as f64 / r.median().as_secs_f64()
}

fn json_entry(name: &str, cycles: u64, r: &BenchResult) -> String {
    format!(
        "      {{ \"config\": \"{name}\", \"median_ns\": {}, \"cycles_per_wall_sec\": {:.1} }}",
        r.median().as_nanos(),
        rate(cycles, r)
    )
}

struct WorkloadRun {
    json: String,
    speedup: f64,
}

fn bench_workload(label: &str, benchmark: Benchmark) -> WorkloadRun {
    let spec = benchmark.spec(InputSize::Small).scaled(0.02);
    let program = cbs_core::workloads::generator::build(&spec).expect("workload builds");
    // One Vm reused across iterations: `Vm` is stateless across runs, and
    // constructing it outside the timed region keeps the measurement on
    // the interpreter loop itself.
    let vm = Vm::new(&program, VmConfig::default());

    // Simulated cycle count is profiler-independent (profilers only add
    // *accounted* overhead, never consume budget), so one unprofiled run
    // supplies the numerator for every configuration's rate.
    let report = vm.run_unprofiled().expect("runs");
    eprintln!(
        "interp_throughput[{label}]: {} instructions, {} calls, {} ticks ({} cycles)",
        report.instructions, report.calls, report.ticks, report.cycles
    );
    let cycles = report.cycles;

    let mut group = BenchGroup::new(&format!("interp_throughput/{label}"), 15);

    let reference = group
        .bench("null_reference_dyn", || {
            let mut p = NullProfiler;
            vm.run_reference(&mut p).expect("runs")
        })
        .clone();
    let optimized = group
        .bench("null_optimized", || {
            let mut p = NullProfiler;
            vm.run_with(&mut p).expect("runs")
        })
        .clone();
    let cbs = group
        .bench("cbs_optimized", || {
            let mut p = CounterBasedSampler::new(CbsConfig::new(3, 16));
            vm.run_with(&mut p).expect("runs")
        })
        .clone();
    let exhaustive = group
        .bench("exhaustive_optimized", || {
            let mut p = ExhaustiveProfiler::new();
            vm.run_with(&mut p).expect("runs")
        })
        .clone();

    // The speedup figure comes from a *paired* pass: each round times one
    // reference run and one optimized run back-to-back and contributes
    // one ratio. On a shared host, interference drifts over seconds;
    // pairing exposes both loops to the same interference window, so the
    // median of per-round ratios is robust where a ratio of independent
    // medians is not.
    let rounds = if smoke_mode() { 1 } else { 25 };
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        let mut p = NullProfiler;
        std::hint::black_box(vm.run_reference(&mut p).expect("runs"));
        let ref_t = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut p = NullProfiler;
        std::hint::black_box(vm.run_with(&mut p).expect("runs"));
        let opt_t = start.elapsed().as_secs_f64();
        ratios.push(ref_t / opt_t.max(1e-12));
    }
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    eprintln!(
        "interp_throughput[{label}]: speedup {speedup:.2}x (median of {rounds} paired rounds)"
    );

    let json = format!
    (
        "  {{\n    \"workload\": \"{label}/small scaled 0.02\",\n    \"simulated_cycles\": {cycles},\n    \
         \"speedup_null_vs_reference\": {speedup:.2},\n    \"configs\": [\n{},\n{},\n{},\n{}\n    ]\n  }}",
        json_entry("null_reference_dyn", cycles, &reference),
        json_entry("null_optimized", cycles, &optimized),
        json_entry("cbs_optimized", cycles, &cbs),
        json_entry("exhaustive_optimized", cycles, &exhaustive),
    );
    WorkloadRun { json, speedup }
}

fn main() {
    // compress: loop-dominated, dispatch is the whole cost — the direct
    // measure of the optimized interpreter loop. jess: call-heavy, so
    // the call machinery both paths share dilutes the ratio.
    let compress = bench_workload("compress", Benchmark::Compress);
    let jess = bench_workload("jess", Benchmark::Jess);

    if smoke_mode() {
        eprintln!("interp_throughput: smoke mode — skipping assertions and BENCH_interp.json");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"interp_throughput\",\n  \"workloads\": [\n{},\n{}\n  ]\n}}\n",
        compress.json, jess.json
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
    std::fs::write(path, json).expect("write BENCH_interp.json");
    eprintln!("interp_throughput: wrote {path}");

    assert!(
        compress.speedup >= 2.0,
        "optimized path must be >=2x the reference dyn path on the \
         loop-dominated workload, got {:.2}x",
        compress.speedup
    );
    assert!(
        jess.speedup >= 1.3,
        "optimized path must clearly beat the reference dyn path even on \
         the call-heavy workload, got {:.2}x",
        jess.speedup
    );
}
