//! Serial vs parallel experiment-runner comparison on the Table 2 quick
//! grid, plus a byte-identity check between the two renditions.
//!
//! The 2× speedup assertion only fires on hosts with ≥4 CPUs — on
//! smaller machines (including single-core CI) the speedup is reported
//! but cannot physically manifest, so it is not asserted.

use cbs_bench::{smoke_mode, BenchGroup};
use cbs_core::experiments::{table2, Table2Options};
use cbs_core::parallel::Parallelism;
use cbs_core::vm::VmFlavor;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let opts = |jobs| Table2Options::quick(VmFlavor::Jikes, 0.05).with_jobs(jobs);

    let mut group = BenchGroup::new("parallelism", 5);
    group.bench("table2_quick_jobs1", || {
        table2(&opts(Parallelism::SERIAL)).expect("table2 runs")
    });
    group.bench("table2_quick_jobs4", || {
        table2(&opts(Parallelism::jobs(4))).expect("table2 runs")
    });

    let serial = group.result("table2_quick_jobs1").expect("ran").median();
    let parallel = group.result("table2_quick_jobs4").expect("ran").median();
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    println!("\nhost cores: {cores}");
    println!("table2 quick grid: jobs=1 {serial:?}  jobs=4 {parallel:?}  speedup {speedup:.2}x");

    let a = table2(&opts(Parallelism::SERIAL))
        .expect("table2 runs")
        .render();
    let b = table2(&opts(Parallelism::jobs(4)))
        .expect("table2 runs")
        .render();
    assert_eq!(a, b, "jobs=4 must render byte-identically to jobs=1");
    println!("determinism: jobs=1 and jobs=4 renditions are byte-identical");

    if smoke_mode() {
        println!("(speedup not asserted: smoke mode, single-iteration timings are noise)");
    } else if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x speedup with 4 jobs on a {cores}-core host, got {speedup:.2}x"
        );
    } else {
        println!("(speedup not asserted: only {cores} core(s) available)");
    }
}
