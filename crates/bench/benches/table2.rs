//! Benchmarks the Table 2 grid experiment (overhead/accuracy sweep) and
//! prints a quick-grid rendition, so `cargo bench` regenerates the
//! artifact while timing its cost.

use cbs_bench::BenchGroup;
use cbs_core::experiments::{table2, Table2Options};
use cbs_core::vm::VmFlavor;

fn main() {
    let mut group = BenchGroup::new("table2", 10);
    for flavor in [VmFlavor::Jikes, VmFlavor::J9] {
        let opts = Table2Options::quick(flavor, 0.02);
        group.bench(&format!("{flavor:?}_quick_grid"), || {
            table2(&opts).expect("table2 runs")
        });
    }

    // Emit the artifact once so bench output doubles as a report.
    let t = table2(&Table2Options::quick(VmFlavor::Jikes, 0.05)).expect("table2 runs");
    println!("\n{}", t.render());
}
