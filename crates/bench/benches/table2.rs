//! Benchmarks the Table 2 grid experiment (overhead/accuracy sweep) and
//! prints a quick-grid rendition, so `cargo bench` regenerates the
//! artifact while timing its cost.

use cbs_core::experiments::{table2, Table2Options};
use cbs_core::vm::VmFlavor;
use criterion::{criterion_group, criterion_main, Criterion};

fn table2_quick(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for flavor in [VmFlavor::Jikes, VmFlavor::J9] {
        let opts = Table2Options::quick(flavor, 0.02);
        group.bench_function(format!("{flavor:?}_quick_grid"), |b| {
            b.iter(|| table2(&opts).expect("table2 runs"));
        });
    }
    group.finish();

    // Emit the artifact once so bench output doubles as a report.
    let t = table2(&Table2Options::quick(VmFlavor::Jikes, 0.05)).expect("table2 runs");
    println!("\n{}", t.render());
}

criterion_group!(benches, table2_quick);
criterion_main!(benches);
