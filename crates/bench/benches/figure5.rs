//! Benchmarks the Figure 5 pipeline: profile → inline → re-measure.
//! Also exercises the Figure 1 demonstration.

use cbs_core::experiments::{figure1_demo, figure5};
use cbs_core::vm::VmFlavor;
use cbs_core::workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn figure_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("figure5_jikes_two_benchmarks", |b| {
        b.iter(|| {
            figure5(
                VmFlavor::Jikes,
                0.05,
                Some(&[Benchmark::Jess, Benchmark::Mtrt]),
            )
            .expect("figure5 runs")
        });
    });
    group.bench_function("figure1_demo", |b| {
        b.iter(|| figure1_demo(120, 20_000).expect("figure1 runs"));
    });
    group.finish();

    let f = figure5(
        VmFlavor::Jikes,
        0.1,
        Some(&[Benchmark::Jess, Benchmark::Mtrt, Benchmark::Javac]),
    )
    .expect("figure5 runs");
    println!("\n{}", f.render());
    let d = figure1_demo(200, 50_000).expect("figure1 runs");
    println!("\n{}", d.render());
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);
