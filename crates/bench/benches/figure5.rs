//! Benchmarks the Figure 5 pipeline: profile → inline → re-measure.
//! Also exercises the Figure 1 demonstration.

use cbs_bench::BenchGroup;
use cbs_core::experiments::{figure1_demo, figure5};
use cbs_core::vm::VmFlavor;
use cbs_core::workloads::Benchmark;

fn main() {
    let mut group = BenchGroup::new("figures", 10);
    group.bench("figure5_jikes_two_benchmarks", || {
        figure5(
            VmFlavor::Jikes,
            0.05,
            Some(&[Benchmark::Jess, Benchmark::Mtrt]),
        )
        .expect("figure5 runs")
    });
    group.bench("figure1_demo", || {
        figure1_demo(120, 20_000).expect("figure1 runs")
    });

    let f = figure5(
        VmFlavor::Jikes,
        0.1,
        Some(&[Benchmark::Jess, Benchmark::Mtrt, Benchmark::Javac]),
    )
    .expect("figure5 runs");
    println!("\n{}", f.render());
    let d = figure1_demo(200, 50_000).expect("figure1 runs");
    println!("\n{}", d.render());
}
