//! Benchmarks the Table 3 per-benchmark breakdown (and Table 1
//! characteristics run, which shares the same full-suite execution
//! pattern).

use cbs_bench::BenchGroup;
use cbs_core::experiments::{table1, table3};
use cbs_core::workloads::Benchmark;

fn main() {
    let mut group = BenchGroup::new("tables", 10);
    group.bench("table1_quick", || table1(0.02).expect("table1 runs"));
    group.bench("table3_quick", || {
        table3(0.02, Some(&[Benchmark::Jess, Benchmark::Mtrt])).expect("table3 runs")
    });

    let t = table3(0.05, Some(&[Benchmark::Jess, Benchmark::Mtrt])).expect("table3 runs");
    println!("\n{}", t.render());
}
