//! Benchmarks the Table 3 per-benchmark breakdown (and Table 1
//! characteristics run, which shares the same full-suite execution
//! pattern).

use cbs_core::experiments::{table1, table3};
use cbs_core::workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn table_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_quick", |b| {
        b.iter(|| table1(0.02).expect("table1 runs"));
    });
    group.bench_function("table3_quick", |b| {
        b.iter(|| {
            table3(0.02, Some(&[Benchmark::Jess, Benchmark::Mtrt])).expect("table3 runs")
        });
    });
    group.finish();

    let t = table3(0.05, Some(&[Benchmark::Jess, Benchmark::Mtrt])).expect("table3 runs");
    println!("\n{}", t.render());
}

criterion_group!(benches, table_benches);
criterion_main!(benches);
