//! Profile-ingestion throughput: edge records per wall-second through
//! the binary codec and the sharded aggregator.
//!
//! A synthetic 50k-edge call graph (deterministic SplitMix64 ids and
//! integral weights, shaped like a real CBS profile: dense low method
//! ids, a long cold tail) is cut into 64 delta frames. The bench
//! measures
//!
//! * `codec/encode` and `codec/decode` — the wire format alone;
//! * `aggregate/shards=N/serial` — one thread ingesting every frame
//!   into an aggregator with N ∈ {1, 4, 8} shards;
//! * `aggregate/shards=N/streaming` — the server's zero-copy path:
//!   encoded frames fold straight into the shards via
//!   `ingest_frame_bytes` with a pooled partition scratch;
//! * `aggregate/shards=N/threads=4` — four pusher threads splitting the
//!   frames, where shard count governs lock contention;
//! * `pull/rebuild` — a merged-snapshot pull whose cache was just
//!   invalidated (epoch advance), i.e. the full lock-merge-encode cost;
//! * `pull/cached` — the same pull against a warm generation-stamped
//!   cache (the repeated-`OP_PULL` fast path, O(1) per request);
//! * `wal/append` — the durable-store write path (4 shards, WAL append
//!   then apply, fsync off — the async-fsync configuration whose cost
//!   must stay within 2× of `aggregate/shards=4/streaming`);
//! * `wal/append_concurrent` — four pusher threads through one
//!   `fsync always` store: concurrent acks share group-commit syncs;
//! * `wal/append_single_lock` — the identical workload and store
//!   configuration serialized behind one external lock, so every push
//!   convoys and syncs a batch of one: the monolithic-lock write path
//!   this store replaced, the baseline the concurrent configuration
//!   must beat (gated in `scripts/verify.sh`);
//! * `recovery/replay` — `ProfileStore::open` replaying the 64-frame
//!   WAL into a fresh aggregator.
//!
//! Emits `BENCH_ingest.json` at the repo root (skipped in smoke mode,
//! like every other bench artifact).

use cbs_bench::{smoke_mode, BenchGroup, BenchResult};
use cbs_core::bytecode::{CallSiteId, MethodId};
use cbs_core::dcg::CallEdge;
use cbs_core::profiled::{
    AggregatorConfig, DcgCodec, DcgFrame, IngestScratch, ProfileJournal, ShardedAggregator,
};
use cbs_core::store::{FsyncPolicy, GroupCommitConfig, ProfileStore, StoreConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const EDGES: usize = 50_000;
const FRAMES: usize = 64;
const PUSHERS: usize = 4;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic profile-shaped record stream: most callers in a hot
/// core, weights on the codec's integral fast path.
fn synthetic_records() -> Vec<(CallEdge, f64)> {
    let mut state = 0xC0FFEE;
    (0..EDGES)
        .map(|_| {
            let r = splitmix(&mut state);
            let caller = if r % 8 < 7 {
                (r >> 3) % 512
            } else {
                (r >> 3) % 100_000
            } as u32;
            let site = ((r >> 24) % 16) as u32;
            let callee = ((r >> 32) % 4096) as u32;
            let weight = (1 + (r >> 48) % 1000) as f64;
            (
                CallEdge::new(
                    MethodId::new(caller),
                    CallSiteId::new(site),
                    MethodId::new(callee),
                ),
                weight,
            )
        })
        .collect()
}

/// A unique scratch directory per call (the workspace has no tempfile
/// dependency); callers remove it when done.
fn scratch_dir(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cbs-bench-{label}-{}-{n}", std::process::id()))
}

/// Records-per-second at the median iteration time.
fn rate(records: usize, r: &BenchResult) -> f64 {
    records as f64 / r.median().as_secs_f64()
}

fn json_entry(name: &str, records: usize, r: &BenchResult) -> String {
    format!(
        "    {{ \"config\": \"{name}\", \"median_ns\": {}, \"records_per_sec\": {:.1} }}",
        r.median().as_nanos(),
        rate(records, r)
    )
}

fn main() {
    let records = synthetic_records();
    let frames: Vec<Vec<u8>> = records
        .chunks(records.len().div_ceil(FRAMES))
        .map(DcgCodec::encode_delta)
        .collect();
    let decoded: Vec<DcgFrame> = frames
        .iter()
        .map(|f| DcgCodec::decode(f).expect("own encoding decodes"))
        .collect();
    let wire_bytes: usize = frames.iter().map(Vec::len).sum();
    eprintln!(
        "profile_ingest: {EDGES} records, {FRAMES} frames, {wire_bytes} wire bytes \
         ({:.2} B/record)",
        wire_bytes as f64 / EDGES as f64
    );

    let mut group = BenchGroup::new("profile_ingest", 20);
    let mut entries = Vec::new();

    let encode = group
        .bench("codec/encode", || {
            records
                .chunks(records.len().div_ceil(FRAMES))
                .map(DcgCodec::encode_delta)
                .map(|f| f.len())
                .sum::<usize>()
        })
        .clone();
    entries.push(json_entry("codec/encode", EDGES, &encode));
    let decode = group
        .bench("codec/decode", || {
            frames
                .iter()
                .map(|f| DcgCodec::decode(f).expect("valid").edges.len())
                .sum::<usize>()
        })
        .clone();
    entries.push(json_entry("codec/decode", EDGES, &decode));

    for shards in [1usize, 4, 8] {
        let serial = group
            .bench(&format!("aggregate/shards={shards}/serial"), || {
                let agg = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
                for frame in &decoded {
                    agg.ingest(frame);
                }
                agg.stats().records
            })
            .clone();
        entries.push(json_entry(
            &format!("aggregate/shards={shards}/serial"),
            EDGES,
            &serial,
        ));

        let streaming = group
            .bench(&format!("aggregate/shards={shards}/streaming"), || {
                let agg = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
                let mut scratch = IngestScratch::new();
                for frame in &frames {
                    agg.ingest_frame_bytes(frame, &mut scratch)
                        .expect("own encoding ingests");
                }
                agg.stats().records
            })
            .clone();
        entries.push(json_entry(
            &format!("aggregate/shards={shards}/streaming"),
            EDGES,
            &streaming,
        ));

        let threaded = group
            .bench(
                &format!("aggregate/shards={shards}/threads={PUSHERS}"),
                || {
                    let agg = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
                    std::thread::scope(|scope| {
                        let agg = &agg;
                        for chunk in decoded.chunks(decoded.len().div_ceil(PUSHERS)) {
                            scope.spawn(move || {
                                for frame in chunk {
                                    agg.ingest(frame);
                                }
                            });
                        }
                    });
                    agg.stats().records
                },
            )
            .clone();
        entries.push(json_entry(
            &format!("aggregate/shards={shards}/threads={PUSHERS}"),
            EDGES,
            &threaded,
        ));
    }

    // Pull-side costs against a fully loaded 8-shard aggregator:
    // `pull/rebuild` pays the lock-merge-encode path every iteration
    // (decay is 1.0, so the epoch advance changes no weight — it only
    // invalidates the cache); `pull/cached` measures the steady-state
    // hit path repeated `OP_PULL`s ride.
    let loaded = ShardedAggregator::new(AggregatorConfig::with_shards(8));
    {
        let mut scratch = IngestScratch::new();
        for frame in &frames {
            loaded
                .ingest_frame_bytes(frame, &mut scratch)
                .expect("own encoding ingests");
        }
    }
    let snapshot_edges = loaded.merged_snapshot().num_edges();
    let rebuild = group
        .bench("pull/rebuild", || {
            loaded.advance_epoch();
            loaded.encoded_snapshot().len()
        })
        .clone();
    entries.push(json_entry("pull/rebuild", snapshot_edges, &rebuild));
    let cached = group
        .bench("pull/cached", || loaded.encoded_snapshot().len())
        .clone();
    entries.push(json_entry("pull/cached", snapshot_edges, &cached));

    // Durable-store write path: same frames, same 4-shard aggregator as
    // aggregate/shards=4/streaming, plus a WAL append per frame with
    // fsync off (the async-durability configuration). Checkpointing is
    // disabled so the measurement is the steady-state append+apply cost.
    let store_config = StoreConfig {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0,
        ..StoreConfig::default()
    };
    let wal_append = group
        .bench("wal/append", || {
            let dir = scratch_dir("wal-append");
            let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
            let store = ProfileStore::open(&dir, agg, store_config.clone()).expect("open store");
            let mut scratch = IngestScratch::new();
            for frame in &frames {
                store
                    .ingest_frame(frame, &mut scratch)
                    .expect("own encoding ingests");
            }
            let records = store.aggregator().stats().records;
            drop(store);
            std::fs::remove_dir_all(&dir).expect("remove scratch dir");
            records
        })
        .clone();
    entries.push(json_entry("wal/append", EDGES, &wal_append));

    // Concurrent durable ingest: the group-commit gate. The records are
    // re-cut into 1024 small frames (per-ack fsync dominates, as in a
    // fleet where pushes are small next to the sync), pushed by four
    // threads through one `fsync always` store. The baseline runs the
    // identical workload and store configuration serialized behind one
    // external lock, so every push convoys and syncs alone — the
    // monolithic-lock write path this store replaced.
    let durable_frames: Vec<Vec<u8>> = records
        .chunks(records.len().div_ceil(16 * FRAMES))
        .map(DcgCodec::encode_delta)
        .collect();
    let concurrent = group
        .bench("wal/append_concurrent", || {
            let dir = scratch_dir("wal-conc");
            let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
            let store = ProfileStore::open(
                &dir,
                agg,
                StoreConfig {
                    fsync: FsyncPolicy::Always,
                    // Hold each sync open briefly for the other pushers
                    // (`--group-commit 4,200` in profiled terms): close
                    // the batch as soon as all four are aboard.
                    group_commit: GroupCommitConfig {
                        max_batch: PUSHERS as u64,
                        max_wait: Duration::from_micros(200),
                    },
                    checkpoint_every: 0,
                    ..StoreConfig::default()
                },
            )
            .expect("open store");
            std::thread::scope(|scope| {
                let store = &store;
                for chunk in durable_frames.chunks(durable_frames.len().div_ceil(PUSHERS)) {
                    scope.spawn(move || {
                        let mut scratch = IngestScratch::new();
                        for frame in chunk {
                            store.ingest_frame(frame, &mut scratch).expect("ingests");
                        }
                    });
                }
            });
            let records = store.aggregator().stats().records;
            drop(store);
            std::fs::remove_dir_all(&dir).expect("remove scratch dir");
            records
        })
        .clone();
    entries.push(json_entry("wal/append_concurrent", EDGES, &concurrent));

    let single_lock = group
        .bench("wal/append_single_lock", || {
            let dir = scratch_dir("wal-lock");
            let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
            let store = ProfileStore::open(
                &dir,
                agg,
                StoreConfig {
                    fsync: FsyncPolicy::Always,
                    checkpoint_every: 0,
                    ..StoreConfig::default()
                },
            )
            .expect("open store");
            let big_lock = std::sync::Mutex::new(());
            std::thread::scope(|scope| {
                let store = &store;
                let big_lock = &big_lock;
                for chunk in durable_frames.chunks(durable_frames.len().div_ceil(PUSHERS)) {
                    scope.spawn(move || {
                        let mut scratch = IngestScratch::new();
                        for frame in chunk {
                            // The external lock serializes the whole
                            // op, so each push reaches the committer
                            // alone and syncs a batch of one.
                            let _guard = big_lock.lock().expect("no poison");
                            store.ingest_frame(frame, &mut scratch).expect("ingests");
                        }
                    });
                }
            });
            let records = store.aggregator().stats().records;
            drop(store);
            std::fs::remove_dir_all(&dir).expect("remove scratch dir");
            records
        })
        .clone();
    entries.push(json_entry("wal/append_single_lock", EDGES, &single_lock));

    // Recovery: open a directory whose WAL already holds every frame
    // and replay it into a fresh aggregator. (Each open leaves one
    // empty segment behind; scanning those headers is negligible next
    // to the replay itself.)
    let replay_dir = scratch_dir("recovery-replay");
    {
        let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
        let store = ProfileStore::open(&replay_dir, agg, store_config.clone()).expect("open store");
        let mut scratch = IngestScratch::new();
        for frame in &frames {
            store
                .ingest_frame(frame, &mut scratch)
                .expect("own encoding ingests");
        }
    }
    let replay = group
        .bench("recovery/replay", || {
            let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
            let store =
                ProfileStore::open(&replay_dir, agg, store_config.clone()).expect("recovery opens");
            assert_eq!(
                store.recovery_report().replayed_frames,
                FRAMES as u64,
                "every frame replays"
            );
            store.aggregator().stats().records
        })
        .clone();
    entries.push(json_entry("recovery/replay", EDGES, &replay));
    std::fs::remove_dir_all(&replay_dir).expect("remove scratch dir");

    if smoke_mode() {
        eprintln!("profile_ingest: smoke mode, skipping BENCH_ingest.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"profile_ingest\",\n  \"records\": {EDGES},\n  \"frames\": {FRAMES},\n  \
         \"wire_bytes\": {wire_bytes},\n  \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, json).expect("write BENCH_ingest.json");
    eprintln!("profile_ingest: wrote BENCH_ingest.json");
}
