//! Microbenchmarks of the profiling mechanisms themselves (real wall
//! time, not simulated cycles): the disabled-path cost CBS adds to every
//! call event, the sampling path, the overlap metric, and raw interpreter
//! throughput.

use cbs_core::prelude::*;
use cbs_core::vm::{Profiler, StackSlice, ThreadId};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_program() -> Program {
    Benchmark::Jess
        .spec(InputSize::Small)
        .scaled(0.02)
        .pipe(|s| cbs_core::workloads::generator::build(&s).expect("jess builds"))
}

trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}

fn interpreter_throughput(c: &mut Criterion) {
    let program = bench_program();
    c.bench_function("interpret_jess_small_2pct", |b| {
        b.iter(|| {
            Vm::new(&program, VmConfig::default())
                .run_unprofiled()
                .expect("runs")
        });
    });
}

fn cbs_event_paths(c: &mut Criterion) {
    let program = bench_program();
    c.bench_function("interpret_with_idle_cbs", |b| {
        b.iter_batched(
            || CounterBasedSampler::new(CbsConfig::new(3, 16)),
            |mut cbs| {
                Vm::new(&program, VmConfig::default())
                    .run(&mut cbs)
                    .expect("runs")
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("interpret_with_grid_of_8_samplers", |b| {
        b.iter_batched(
            || {
                let mut multi = MultiProfiler::new();
                for stride in [1, 3, 7, 15] {
                    for samples in [1, 16] {
                        multi.attach(Box::new(CounterBasedSampler::new(CbsConfig::new(
                            stride, samples,
                        ))));
                    }
                }
                multi
            },
            |mut multi| {
                Vm::new(&program, VmConfig::default())
                    .run(&mut multi)
                    .expect("runs")
            },
            BatchSize::SmallInput,
        );
    });
}

fn overlap_metric(c: &mut Criterion) {
    let program = bench_program();
    let mut ex = ExhaustiveProfiler::new();
    let mut cbs = CounterBasedSampler::new(CbsConfig::new(3, 16));
    {
        let mut multi = MultiProfiler::new();
        // Throwaway run to fill a sampled profile for the metric bench.
        Vm::new(&program, VmConfig::default()).run(&mut ex).expect("runs");
        Vm::new(&program, VmConfig::default()).run(&mut cbs).expect("runs");
        let _ = &mut multi;
    }
    let perfect = ex.take_dcg();
    let sampled = cbs.take_dcg();
    c.bench_function("overlap_metric", |b| {
        b.iter(|| cbs_core::dcg::overlap(std::hint::black_box(&sampled), &perfect));
    });
}

fn stack_walk(c: &mut Criterion) {
    // Measure the host cost of a context-path walk through the event
    // machinery on a deep synthetic stack.
    use cbs_core::vm::Frame;
    let mut frames = Vec::new();
    for i in 0..64u32 {
        let mut f = Frame::new(cbs_core::bytecode::MethodId::new(i), 0);
        f.set_pending_site(Some(cbs_core::bytecode::CallSiteId::new(i)));
        frames.push(f);
    }
    c.bench_function("pc_sampler_tick_on_depth_64", |b| {
        let mut pc = PcSampler::new();
        b.iter(|| {
            pc.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
        });
    });
}

criterion_group!(
    benches,
    interpreter_throughput,
    cbs_event_paths,
    overlap_metric,
    stack_walk
);
criterion_main!(benches);
