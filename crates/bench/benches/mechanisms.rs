//! Microbenchmarks of the profiling mechanisms themselves (real wall
//! time, not simulated cycles): the disabled-path cost CBS adds to every
//! call event, the sampling path, the overlap metric, and raw interpreter
//! throughput.

use cbs_bench::BenchGroup;
use cbs_core::prelude::*;
use cbs_core::vm::{Profiler, StackSlice, ThreadId};

fn bench_program() -> Program {
    Benchmark::Jess
        .spec(InputSize::Small)
        .scaled(0.02)
        .pipe(|s| cbs_core::workloads::generator::build(&s).expect("jess builds"))
}

trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}

fn interpreter_throughput(group: &mut BenchGroup) {
    let program = bench_program();
    group.bench("interpret_jess_small_2pct", || {
        Vm::new(&program, VmConfig::default())
            .run_unprofiled()
            .expect("runs")
    });
}

fn cbs_event_paths(group: &mut BenchGroup) {
    let program = bench_program();
    // Fresh profiler state is rebuilt inside each timed iteration; its
    // construction cost is negligible next to the interpretation it gates.
    group.bench("interpret_with_idle_cbs", || {
        let mut cbs = CounterBasedSampler::new(CbsConfig::new(3, 16));
        Vm::new(&program, VmConfig::default())
            .run(&mut cbs)
            .expect("runs")
    });
    group.bench("interpret_with_grid_of_8_samplers", || {
        let mut multi = MultiProfiler::new();
        for stride in [1, 3, 7, 15] {
            for samples in [1, 16] {
                multi.attach(Box::new(CounterBasedSampler::new(CbsConfig::new(
                    stride, samples,
                ))));
            }
        }
        Vm::new(&program, VmConfig::default())
            .run(&mut multi)
            .expect("runs")
    });
}

fn overlap_metric(group: &mut BenchGroup) {
    let program = bench_program();
    let mut ex = ExhaustiveProfiler::new();
    let mut cbs = CounterBasedSampler::new(CbsConfig::new(3, 16));
    // Throwaway runs to fill a sampled profile for the metric bench.
    Vm::new(&program, VmConfig::default())
        .run(&mut ex)
        .expect("runs");
    Vm::new(&program, VmConfig::default())
        .run(&mut cbs)
        .expect("runs");
    let perfect = ex.take_dcg();
    let sampled = cbs.take_dcg();
    group.bench("overlap_metric", || {
        cbs_core::dcg::overlap(std::hint::black_box(&sampled), &perfect)
    });
}

fn stack_walk(group: &mut BenchGroup) {
    // Measure the host cost of a context-path walk through the event
    // machinery on a deep synthetic stack.
    use cbs_core::vm::Frame;
    let mut frames = Vec::new();
    for i in 0..64u32 {
        let mut f = Frame::new(cbs_core::bytecode::MethodId::new(i), 0);
        f.set_pending_site(Some(cbs_core::bytecode::CallSiteId::new(i)));
        frames.push(f);
    }
    let mut pc = PcSampler::new();
    group.bench("pc_sampler_tick_on_depth_64", || {
        pc.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
    });
}

fn main() {
    let mut group = BenchGroup::new("mechanisms", 20);
    interpreter_throughput(&mut group);
    cbs_event_paths(&mut group);
    overlap_metric(&mut group);
    stack_walk(&mut group);
}
