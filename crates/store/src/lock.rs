//! Advisory single-opener lock for a store data directory.
//!
//! Two writers on the same directory — say `profiled --data-dir X` and
//! `dcgtool store compact X` — would interleave WAL appends, rotate
//! each other's segments, and race the checkpoint rename; any of those
//! corrupts the store. [`StoreLock::acquire`] makes the second opener
//! fail fast with a clear error instead.
//!
//! The lock is a `store.lock` file created with `create_new` (the
//! atomic part) holding the owner's pid. Staleness matters more than
//! strictness here: the crash-recovery story is "SIGKILL the daemon,
//! reopen the directory", so a lock whose owner is gone must never
//! block recovery. A pre-existing lock is honoured only while
//! `/proc/<pid>` exists; otherwise it is swept and the acquire retried.
//! This is advisory — it guards against operator accidents, not against
//! hostile processes ignoring the protocol.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The lock file's name inside the data directory.
pub const LOCK_FILE: &str = "store.lock";

/// Bound on create/sweep races before giving up: each retry means the
/// previous holder died (or vanished) mid-acquire, so more than a
/// handful indicates something pathological.
const MAX_ATTEMPTS: usize = 16;

/// A held data-directory lock; dropping it releases (deletes) the file.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Acquires the advisory lock in `dir`, sweeping a stale lock whose
    /// owning process no longer exists.
    ///
    /// # Errors
    ///
    /// `AddrInUse` with the holder's pid when another live process owns
    /// the directory; otherwise propagates I/O failures.
    pub fn acquire(dir: &Path) -> io::Result<Self> {
        let path = dir.join(LOCK_FILE);
        for _ in 0..MAX_ATTEMPTS {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(format!("{}\n", std::process::id()).as_bytes())?;
                    file.sync_all()?;
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    match holder_pid(&path)? {
                        Some(pid) if pid_alive(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!(
                                    "store directory {} is locked by running process {pid} \
                                     (close it first; a dead holder's lock is removed \
                                     automatically)",
                                    dir.display()
                                ),
                            ));
                        }
                        // Holder dead, lock vanished between the create
                        // and the read, or unreadable garbage: sweep it
                        // and retry the atomic create.
                        _ => {
                            let _ = fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::other(format!(
            "could not acquire {} after {MAX_ATTEMPTS} attempts (lock churn)",
            path.display()
        )))
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Reads the pid recorded in an existing lock file. `Ok(None)` when the
/// file vanished (the holder released it) or holds garbage.
fn holder_pid(path: &Path) -> io::Result<Option<u32>> {
    match fs::read_to_string(path) {
        Ok(s) => Ok(s.trim().parse::<u32>().ok()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Whether `pid` names a live process. Our own pid is always "alive"
/// (a second open from the same process must still be refused).
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        // No portable liveness probe without a libc dependency: treat
        // the lock as stale so a crashed holder never wedges recovery.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir::TestDir;

    #[test]
    fn second_acquire_is_refused_while_held() {
        let dir = TestDir::new("lock-held");
        let lock = StoreLock::acquire(dir.path()).unwrap();
        let err = StoreLock::acquire(dir.path()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        assert!(
            err.to_string().contains("locked by running process"),
            "refusal must name the holder: {err}"
        );
        drop(lock);
        // Released: acquirable again.
        StoreLock::acquire(dir.path()).unwrap();
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_swept() {
        let dir = TestDir::new("lock-stale");
        // Pid 0 is the idle/swapper pseudo-process; /proc/0 never exists,
        // so this models a SIGKILLed holder.
        fs::write(dir.path().join(LOCK_FILE), "0\n").unwrap();
        let lock = StoreLock::acquire(dir.path()).unwrap();
        let recorded = fs::read_to_string(lock.path()).unwrap();
        assert_eq!(recorded.trim(), std::process::id().to_string());
    }

    #[test]
    fn garbage_lock_content_is_swept() {
        let dir = TestDir::new("lock-garbage");
        fs::write(dir.path().join(LOCK_FILE), "not a pid").unwrap();
        StoreLock::acquire(dir.path()).unwrap();
    }
}
