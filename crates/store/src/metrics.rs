//! Static telemetry handles for the durable store, registered in the
//! process-wide [`cbs_telemetry::global`] registry (naming scheme
//! `store.<subsystem>.<metric>`). All counters here are deterministic
//! for a deterministic workload.

use cbs_telemetry::{global, Counter};
use std::sync::OnceLock;

/// The store's metric handles. Obtain via [`StoreMetrics::get`].
#[derive(Debug)]
pub struct StoreMetrics {
    /// WAL records appended (frames, sequenced frames, epoch advances).
    pub wal_appends: Counter,
    /// WAL bytes written (framing included).
    pub wal_bytes: Counter,
    /// Checkpoints committed.
    pub checkpoints: Counter,
    /// Frames re-applied from the WAL during recovery.
    pub recovery_replayed_frames: Counter,
    /// Recoveries that truncated a torn or corrupt WAL tail.
    pub recovery_truncated_tail: Counter,
}

impl StoreMetrics {
    /// The process-wide handles, registered on first call.
    pub fn get() -> &'static StoreMetrics {
        static HANDLES: OnceLock<StoreMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let r = global();
            StoreMetrics {
                wal_appends: r.counter("store.wal.appends", "WAL records appended"),
                wal_bytes: r.counter("store.wal.bytes", "WAL bytes written (framing included)"),
                checkpoints: r.counter("store.checkpoints", "checkpoints committed"),
                recovery_replayed_frames: r.counter(
                    "store.recovery.replayed_frames",
                    "frames re-applied from the WAL during recovery",
                ),
                recovery_truncated_tail: r.counter(
                    "store.recovery.truncated_tail",
                    "recoveries that truncated a torn or corrupt WAL tail",
                ),
            }
        })
    }
}
