//! Static telemetry handles for the durable store, registered in the
//! process-wide [`cbs_telemetry::global`] registry (naming scheme
//! `store.<subsystem>.<metric>`). Counters of *applied work* are
//! deterministic for a deterministic workload; group-commit shape
//! (how many syncs, how large each batch) depends on thread timing and
//! is registered as wall-clock.

use cbs_telemetry::{global, Counter, Histogram, Stability};
use std::sync::OnceLock;

/// Group-commit batch-size buckets (appends acked per shared sync).
const BATCH_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// The store's metric handles. Obtain via [`StoreMetrics::get`].
#[derive(Debug)]
pub struct StoreMetrics {
    /// WAL records appended (frames, sequenced frames, epoch advances).
    pub wal_appends: Counter,
    /// WAL bytes written (framing included).
    pub wal_bytes: Counter,
    /// Shared group-commit syncs completed.
    pub wal_group_commits: Counter,
    /// Appends acknowledged per shared sync.
    pub wal_batch_size: Histogram,
    /// Dirty WAL tails synced by a graceful-shutdown flush.
    pub wal_shutdown_syncs: Counter,
    /// Checkpoints committed.
    pub checkpoints: Counter,
    /// Post-commit segment-GC failures (the checkpoint itself was
    /// installed; the next checkpoint retries the deletion).
    pub checkpoint_gc_errors: Counter,
    /// Poisoned fault-schedule locks recovered (a holder panicked).
    pub fault_lock_recovered: Counter,
    /// Frames re-applied from the WAL during recovery.
    pub recovery_replayed_frames: Counter,
    /// Recoveries that truncated a torn or corrupt WAL tail.
    pub recovery_truncated_tail: Counter,
}

impl StoreMetrics {
    /// The process-wide handles, registered on first call.
    pub fn get() -> &'static StoreMetrics {
        static HANDLES: OnceLock<StoreMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let r = global();
            StoreMetrics {
                wal_appends: r.counter("store.wal.appends", "WAL records appended"),
                wal_bytes: r.counter("store.wal.bytes", "WAL bytes written (framing included)"),
                wal_group_commits: r.counter(
                    "store.wal.group_commits",
                    "shared group-commit syncs completed",
                ),
                wal_batch_size: r.histogram(
                    "store.wal.batch_size",
                    "appends acknowledged per shared sync",
                    BATCH_BUCKETS,
                    Stability::Wallclock,
                ),
                wal_shutdown_syncs: r.counter(
                    "store.wal.shutdown_syncs",
                    "dirty WAL tails synced by a graceful-shutdown flush",
                ),
                checkpoints: r.counter("store.checkpoints", "checkpoints committed"),
                checkpoint_gc_errors: r.counter(
                    "store.checkpoint.gc_errors",
                    "post-commit segment-GC failures (retried next checkpoint)",
                ),
                fault_lock_recovered: r.counter(
                    "store.faults.lock_recovered",
                    "poisoned fault-schedule locks recovered",
                ),
                recovery_replayed_frames: r.counter(
                    "store.recovery.replayed_frames",
                    "frames re-applied from the WAL during recovery",
                ),
                recovery_truncated_tail: r.counter(
                    "store.recovery.truncated_tail",
                    "recoveries that truncated a torn or corrupt WAL tail",
                ),
            }
        })
    }
}
