//! [`ProfileStore`]: the durable [`ProfileJournal`] implementation.
//!
//! ## Staged write path (group commit)
//!
//! Every accepted operation passes through three stages, so concurrent
//! pusher connections overlap instead of convoying on one store-wide
//! lock:
//!
//! 1. **Append** — a short critical section under the append lock:
//!    write one WAL record and take a *ticket*. The lock serializes
//!    appends, so ticket order **is** WAL record order.
//! 2. **Commit** — durability per [`FsyncPolicy`]. Under `Always`, a
//!    *group commit*: the first waiter becomes the sync leader, batches
//!    every append that landed while the previous fsync was in flight,
//!    issues one shared `sync_all`, and wakes the followers. One disk
//!    flush acknowledges the whole batch.
//! 3. **Apply** — a ticket-ordered turnstile folds each op into the
//!    aggregator in exactly WAL order. (f64 accumulation is not
//!    associative: replaying the log must reproduce the aggregator
//!    bit-for-bit, so applies may pipeline against appends and fsyncs
//!    but never reorder against each other.)
//!
//! Frames are decoded and partitioned *before* the append
//! (`ShardedAggregator::partition_frame`, which accepts exactly the
//! inputs the eager codec does), because with concurrent appenders a
//! failed apply can no longer truncate its record back off the log —
//! later appends already landed behind it. The partitioned buckets
//! then feed the apply stage directly, so each record is decoded once.
//!
//! ## Recovery invariant
//!
//! After `open`, the store's observable state — the encoded snapshot,
//! the decay epoch, the dedup table (entries *and* recency counter),
//! and the lifetime frame/record counters — is byte-identical to an
//! uninterrupted store that ingested exactly the durable prefix of
//! operations *in WAL record order*. A torn or corrupt WAL tail is
//! detected by CRC, truncated away, and reported; it is never an error
//! and never half-applied.
//!
//! The data directory is guarded by an advisory lockfile
//! ([`crate::lock::StoreLock`]): a second opener fails fast instead of
//! corrupting the WAL, and a dead holder's lock is swept automatically
//! so crash recovery is never blocked.
//!
//! ## Crash injection
//!
//! For tests, a [`FaultSchedule`] armed with a [`CrashSpec`] makes the
//! store simulate a power loss at a scripted [`CrashSite`]: the write
//! path performs exactly the disk writes that would have landed, sets a
//! poisoned flag, and fails every later operation with
//! [`JournalError::Crashed`] until the directory is reopened. In-flight
//! concurrent operations may still complete (their records are on disk,
//! exactly like a real crash that lands mid-batch).

use crate::checkpoint::{Checkpoint, CKPT_TMP_FILE};
use crate::lock::StoreLock;
use crate::metrics::StoreMetrics;
use crate::wal::{
    self, decode_op, encode_epoch, encode_frame, encode_seq_frame, list_segments, scan_segment,
    SegmentWriter, WalOp, RECORD_OVERHEAD, WAL_HEADER_LEN,
};
use cbs_profiled::{
    CodecError, CrashSite, CrashSpec, DedupEntry, DedupTable, DedupUsage, FaultSchedule, FrameKind,
    IngestScratch, JournalError, ProfileJournal, SeqIngest, ShardedAggregator,
};
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Defensive wake-up interval for condvar waits: every waiter also
/// polls the poisoned flag, so a crash can never strand a sleeper even
/// if a notification is lost to a panicking thread.
const CRASH_POLL: Duration = Duration::from_millis(50);

/// When the WAL file is fsynced relative to the acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync before every ack: an acked operation survives power loss.
    /// Concurrent acks share one sync via group commit.
    Always,
    /// Never sync explicitly: an acked operation survives a process
    /// crash (the write reached the kernel) but not a power loss.
    Never,
    /// Sync every `n`-th append: bounded loss window, near-`Never`
    /// throughput.
    EveryN(u64),
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(Self::Always),
            "never" => Ok(Self::Never),
            n => n
                .parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .map(Self::EveryN)
                .ok_or_else(|| format!("fsync policy must be 'always', 'never', or a count: {s}")),
        }
    }
}

/// Group-commit tuning for [`FsyncPolicy::Always`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Most appends one shared sync may acknowledge. Batches form
    /// naturally from whatever arrived while the previous sync was in
    /// flight; this caps them.
    pub max_batch: u64,
    /// How long a sync leader may wait for the batch to fill before
    /// syncing anyway. Zero (the default) adds no latency: the leader
    /// syncs immediately and batching comes purely from fsync overlap.
    pub max_wait: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::ZERO,
        }
    }
}

impl FromStr for GroupCommitConfig {
    type Err = String;

    /// Parses `<max-batch>` or `<max-batch>,<max-wait-us>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (batch, wait) = match s.split_once(',') {
            Some((b, w)) => (b, Some(w)),
            None => (s, None),
        };
        let max_batch = batch
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("group-commit max-batch must be a positive count: {s}"))?;
        let max_wait = match wait {
            Some(w) => Duration::from_micros(
                w.parse::<u64>()
                    .map_err(|_| format!("group-commit max-wait-us must be a count: {s}"))?,
            ),
            None => Duration::ZERO,
        };
        Ok(Self {
            max_batch,
            max_wait,
        })
    }
}

/// Durable-store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Group-commit tuning (only meaningful with [`FsyncPolicy::Always`]).
    pub group_commit: GroupCommitConfig,
    /// Applied frames between automatic checkpoints (`0` = only
    /// explicit [`ProfileStore::checkpoint_now`] calls).
    pub checkpoint_every: u64,
    /// Dedup-table client cap (`0` = unbounded).
    pub dedup_capacity: usize,
    /// Largest WAL record payload accepted (a guard against a
    /// misconfigured frame limit upstream).
    pub max_record_bytes: usize,
    /// Fault schedule carrying scripted crash points, if any.
    pub faults: Option<Arc<Mutex<FaultSchedule>>>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            group_commit: GroupCommitConfig::default(),
            checkpoint_every: 1024,
            dedup_capacity: DedupTable::DEFAULT_CAPACITY,
            max_record_bytes: 64 << 20,
            faults: None,
        }
    }
}

/// What recovery found and did while opening the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The committed checkpoint's epoch, when one was loaded.
    pub checkpoint_epoch: Option<u64>,
    /// WAL segments scanned (checkpoint-subsumed leftovers excluded).
    pub segments_scanned: usize,
    /// Stale segments (subsumed by the checkpoint) deleted.
    pub stale_segments_removed: usize,
    /// Frames re-applied from the WAL.
    pub replayed_frames: u64,
    /// Edge records those frames carried.
    pub replayed_records: u64,
    /// Epoch advances re-applied from the WAL.
    pub replayed_epochs: u64,
    /// `true` when a torn/corrupt tail was truncated away.
    pub truncated_tail: bool,
    /// Where the truncation happened: (segment seq, byte offset).
    pub truncated_at: Option<(u64, u64)>,
}

/// Append-stage state: everything the short WAL critical section needs.
/// Holding this lock serializes WAL writes, so ticket order is record
/// order.
#[derive(Debug)]
struct AppendState {
    wal: SegmentWriter,
    dedup: DedupTable,
    frames_since_checkpoint: u64,
    appends_since_sync: u64,
    /// Tickets issued so far; the next append takes `next_ticket + 1`.
    next_ticket: u64,
    /// The epoch the next `advance_epoch` will journal. Tracked here
    /// (not read from the aggregator) because earlier epoch tickets may
    /// still be in flight between append and apply.
    next_epoch: u64,
}

/// Apply-stage turnstile: `next` is the only ticket allowed to apply.
#[derive(Debug)]
struct ApplyState {
    next: u64,
}

/// Commit-stage state: durability bookkeeping and the group-commit
/// leader slot.
#[derive(Debug)]
struct CommitState {
    /// Highest ticket whose WAL record is written.
    appended: u64,
    /// Highest ticket covered by a completed sync.
    durable: u64,
    /// The live segment's file handle, so a leader can `sync_all`
    /// without holding the append lock. Swapped on rotation *after* the
    /// old segment was synced, so tickets in `(durable, appended]` are
    /// always in this file.
    file: Arc<File>,
    /// A sync leader is in flight; late arrivals become followers.
    leader: bool,
}

/// The durable profile journal. See the module docs.
#[derive(Debug)]
pub struct ProfileStore {
    dir: PathBuf,
    /// Advisory data-directory lock; held for the store's lifetime and
    /// released (deleted) on drop.
    _lock: StoreLock,
    aggregator: Arc<ShardedAggregator>,
    config: StoreConfig,
    recovery: RecoveryReport,
    /// Set by a scripted crash, a lock poisoned mid-operation, or a
    /// failed group fsync; every later operation fails with
    /// [`JournalError::Crashed`].
    crashed: AtomicBool,
    append: Mutex<AppendState>,
    apply: Mutex<ApplyState>,
    apply_cv: Condvar,
    commit: Mutex<CommitState>,
    commit_cv: Condvar,
}

impl ProfileStore {
    /// Opens (or initializes) the store in `dir`, recovering
    /// checkpoint + WAL tail into `aggregator` — which must be fresh
    /// (zero frames, epoch zero): recovery rebuilds it from disk.
    ///
    /// # Errors
    ///
    /// I/O failures, a corrupt checkpoint (`InvalidData`), a non-fresh
    /// aggregator (`InvalidInput`), or a directory locked by another
    /// live process (`AddrInUse`). A torn/corrupt WAL tail is *not* an
    /// error — it is truncated and reported in the [`RecoveryReport`].
    pub fn open(
        dir: impl Into<PathBuf>,
        aggregator: Arc<ShardedAggregator>,
        config: StoreConfig,
    ) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let lock = StoreLock::acquire(&dir)?;
        let stats = aggregator.stats();
        if stats.frames != 0 || stats.epoch != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "ProfileStore::open requires a fresh aggregator (recovery rebuilds it)",
            ));
        }
        // A crash can leave a prepared-but-uncommitted checkpoint temp
        // behind; it was never acknowledged as installed, so drop it.
        let _ = fs::remove_file(dir.join(CKPT_TMP_FILE));

        let mut report = RecoveryReport::default();
        let mut dedup = DedupTable::new(config.dedup_capacity);
        let mut scratch = IngestScratch::new();
        let (mut base_frames, mut base_records) = (0u64, 0u64);
        let mut min_seq = 0u64;

        if let Some(ckpt) = Checkpoint::load(&dir)? {
            // Ingest the snapshot at epoch zero (undecayed — the bytes
            // are post-catch-up), then stamp the clock without decaying.
            aggregator
                .ingest_frame_bytes(&ckpt.snapshot, &mut scratch)
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("checkpoint snapshot failed to decode: {e}"),
                    )
                })?;
            aggregator.restore_clock(ckpt.epoch);
            dedup.restore(ckpt.next_touch, &ckpt.dedup);
            base_frames = ckpt.frames;
            base_records = ckpt.records;
            min_seq = ckpt.wal_seq;
            report.checkpoint_epoch = Some(ckpt.epoch);
        }

        let mut max_seq_seen = min_seq;
        let mut live = Vec::new();
        for (seq, path) in list_segments(&dir)? {
            max_seq_seen = max_seq_seen.max(seq);
            if seq < min_seq {
                // Subsumed by the checkpoint: a crash between the
                // checkpoint rename and segment deletion left it here.
                fs::remove_file(&path)?;
                report.stale_segments_removed += 1;
            } else {
                live.push((seq, path));
            }
        }

        let mut cut: Option<(usize, u64, PathBuf)> = None; // (live idx, offset, path)
        'segments: for (idx, (_seq, path)) in live.iter().enumerate() {
            report.segments_scanned += 1;
            let scan = scan_segment(path)?;
            for record in &scan.records {
                let applied = match decode_op(&record.payload) {
                    Some(WalOp::Frame(frame)) => {
                        Some(aggregator.ingest_frame_bytes(frame, &mut scratch))
                    }
                    Some(WalOp::SeqFrame { client, seq, frame }) => {
                        // The writer only journals applied sequences, so
                        // a replayed pair is always new relative to the
                        // restored table; the guard is pure defense.
                        if dedup.last_seq(client).is_none_or(|last| seq > last) {
                            let applied = aggregator.ingest_frame_bytes(frame, &mut scratch);
                            if applied.is_ok() {
                                dedup.record(client, seq);
                            }
                            Some(applied)
                        } else {
                            None
                        }
                    }
                    Some(WalOp::Epoch(_)) => {
                        aggregator.advance_epoch();
                        report.replayed_epochs += 1;
                        None
                    }
                    None => {
                        // CRC-intact but undecodable: corruption. Cut
                        // here.
                        cut = Some((idx, record.offset, path.clone()));
                        break 'segments;
                    }
                };
                match applied {
                    Some(Ok((_, records))) => {
                        report.replayed_frames += 1;
                        report.replayed_records += records as u64;
                    }
                    Some(Err(_)) => {
                        // Same policy as an undecodable payload.
                        cut = Some((idx, record.offset, path.clone()));
                        break 'segments;
                    }
                    None => {}
                }
            }
            if scan.corrupt {
                cut = Some((idx, scan.valid_len, path.clone()));
                break 'segments;
            }
        }

        if let Some((idx, offset, path)) = cut {
            let seq = live[idx].0;
            if offset < WAL_HEADER_LEN {
                // Even the header is gone; nothing in the file is real.
                fs::remove_file(&path)?;
            } else {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(offset)?;
                f.sync_all()?;
            }
            // Anything after the cut never became durable in order;
            // later segments (if any) are unreachable tail too.
            for (_, later) in &live[idx + 1..] {
                fs::remove_file(later)?;
            }
            wal::sync_dir(&dir)?;
            report.truncated_tail = true;
            report.truncated_at = Some((seq, offset));
            StoreMetrics::get().recovery_truncated_tail.inc();
        }

        aggregator.restore_counters(
            base_frames + report.replayed_frames,
            base_records + report.replayed_records,
        );
        StoreMetrics::get()
            .recovery_replayed_frames
            .add(report.replayed_frames);

        let wal = SegmentWriter::create(&dir, max_seq_seen + 1)?;
        let file = wal.file();
        let next_epoch = aggregator.epoch();
        Ok(Self {
            dir,
            _lock: lock,
            config,
            crashed: AtomicBool::new(false),
            append: Mutex::new(AppendState {
                wal,
                dedup,
                // A long replayed tail means the last checkpoint is
                // stale; carry the count so the next ingest can trigger
                // an automatic checkpoint promptly.
                frames_since_checkpoint: report.replayed_frames,
                appends_since_sync: 0,
                next_ticket: 0,
                next_epoch,
            }),
            apply: Mutex::new(ApplyState { next: 1 }),
            apply_cv: Condvar::new(),
            commit: Mutex::new(CommitState {
                appended: 0,
                durable: 0,
                file,
                leader: false,
            }),
            commit_cv: Condvar::new(),
            aggregator,
            recovery: report,
        })
    }

    /// The aggregator this store recovers into and applies onto.
    pub fn aggregator(&self) -> &Arc<ShardedAggregator> {
        &self.aggregator
    }

    /// What recovery found when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The store's data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The dedup table's entries (sorted by client id) — exposed so
    /// tests can assert bit-identical recovery of the table.
    pub fn dedup_entries(&self) -> Vec<DedupEntry> {
        self.lock_append().dedup.entries()
    }

    /// The dedup table's touch counter.
    pub fn dedup_next_touch(&self) -> u64 {
        self.lock_append().dedup.next_touch()
    }

    /// `true` when acknowledged appends are not yet covered by a sync —
    /// the window [`Self::sync_now`] (and the shutdown flush) closes.
    pub fn wal_dirty(&self) -> bool {
        let c = self.lock_commit();
        c.durable < c.appended
    }

    /// Fsyncs the WAL tail now, regardless of policy, and resets the
    /// [`FsyncPolicy::EveryN`] cadence (an actual sync is an actual
    /// sync — the next `n`-window starts here).
    ///
    /// # Errors
    ///
    /// [`JournalError::Storage`] on I/O failure, [`JournalError::Crashed`]
    /// after a scripted crash.
    pub fn sync_now(&self) -> Result<(), JournalError> {
        self.check_crashed()?;
        self.force_sync_all()
    }

    /// Takes a checkpoint now: quiesces applies, rotates the WAL,
    /// snapshots the merged graph + epoch + counters + dedup table,
    /// installs it atomically, and deletes the subsumed segments.
    ///
    /// # Errors
    ///
    /// [`JournalError::Storage`] on I/O failure, [`JournalError::Crashed`]
    /// after a scripted crash.
    pub fn checkpoint_now(&self) -> Result<(), JournalError> {
        let mut a = self.lock_append();
        self.check_crashed()?;
        self.checkpoint_locked(&mut a)
    }

    fn check_crashed(&self) -> Result<(), JournalError> {
        if self.crashed.load(Ordering::SeqCst) {
            Err(JournalError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Recovers a poisoned lock result: a panic while a store lock was
    /// held leaves disk state unknown, so poison the store rather than
    /// guess.
    fn recover_poison<T>(&self, result: Result<T, PoisonError<T>>) -> T {
        result.unwrap_or_else(|e| {
            self.crashed.store(true, Ordering::SeqCst);
            e.into_inner()
        })
    }

    fn lock_append(&self) -> MutexGuard<'_, AppendState> {
        self.recover_poison(self.append.lock())
    }

    fn lock_apply(&self) -> MutexGuard<'_, ApplyState> {
        self.recover_poison(self.apply.lock())
    }

    fn lock_commit(&self) -> MutexGuard<'_, CommitState> {
        self.recover_poison(self.commit.lock())
    }

    fn crash_fires(&self, site: CrashSite) -> Option<CrashSpec> {
        let faults = self.config.faults.as_ref()?;
        // A panicking *holder* of the schedule poisons the mutex, but
        // the schedule itself is a plain value — recover it instead of
        // propagating the panic into every later journal call.
        let mut guard = faults.lock().unwrap_or_else(|e| {
            StoreMetrics::get().fault_lock_recovered.inc();
            e.into_inner()
        });
        guard.crash_fires(site)
    }

    /// Appends one record under the append lock: crash sites, the WAL
    /// write, the `EveryN` cadence, and the ticket. Returns the ticket.
    fn append_locked(&self, a: &mut AppendState, payload: &[u8]) -> Result<u64, JournalError> {
        if payload.len() > self.config.max_record_bytes {
            return Err(JournalError::Storage(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL record of {} bytes exceeds max_record_bytes {}",
                    payload.len(),
                    self.config.max_record_bytes
                ),
            )));
        }
        if self.crash_fires(CrashSite::BeforeWalAppend).is_some() {
            self.crashed.store(true, Ordering::SeqCst);
            return Err(JournalError::Crashed);
        }
        if let Some(spec) = self.crash_fires(CrashSite::TornWalRecord) {
            a.wal.append_torn(payload, spec.torn_keep)?;
            self.crashed.store(true, Ordering::SeqCst);
            return Err(JournalError::Crashed);
        }
        a.wal.append(payload)?;
        a.next_ticket += 1;
        let ticket = a.next_ticket;
        let mut synced = false;
        if let FsyncPolicy::EveryN(n) = self.config.fsync {
            a.appends_since_sync += 1;
            if a.appends_since_sync >= n {
                a.wal.sync()?;
                a.appends_since_sync = 0;
                synced = true;
            }
        }
        let mut c = self.lock_commit();
        c.appended = ticket;
        if synced {
            c.durable = c.durable.max(ticket);
        }
        drop(c);
        // Wake a batch-forming leader (and, after an inline sync, any
        // follower the sync happened to cover).
        self.commit_cv.notify_all();
        Ok(ticket)
    }

    /// Runs `f` when `ticket`'s turn in the apply turnstile comes:
    /// applies happen in exactly WAL record order.
    fn apply_in_order<T>(
        &self,
        ticket: u64,
        f: impl FnOnce() -> Result<T, CodecError>,
    ) -> Result<T, JournalError> {
        let mut g = self.lock_apply();
        while g.next != ticket {
            self.check_crashed()?;
            let (g2, _) = self.recover_poison(self.apply_cv.wait_timeout(g, CRASH_POLL));
            g = g2;
        }
        if self.crash_fires(CrashSite::BeforeApply).is_some() {
            // The record is journaled (and durable per policy) but the
            // process dies before applying it: recovery must replay it.
            // Advance the turnstile so in-flight neighbours drain.
            g.next = ticket + 1;
            self.crashed.store(true, Ordering::SeqCst);
            self.apply_cv.notify_all();
            return Err(JournalError::Crashed);
        }
        let result = f();
        g.next = ticket + 1;
        self.apply_cv.notify_all();
        drop(g);
        result.map_err(|e| {
            // Unreachable while validate and apply accept identical
            // inputs; if they ever disagree the aggregator may have
            // diverged from the WAL — poison rather than guess.
            self.crashed.store(true, Ordering::SeqCst);
            e.into()
        })
    }

    /// Waits until every ticket up to and including `upto` has applied.
    fn wait_applied_through(&self, upto: u64) -> Result<(), JournalError> {
        let mut g = self.lock_apply();
        while g.next <= upto {
            self.check_crashed()?;
            let (g2, _) = self.recover_poison(self.apply_cv.wait_timeout(g, CRASH_POLL));
            g = g2;
        }
        Ok(())
    }

    /// Marks tickets through `upto` durable and wakes commit waiters.
    fn mark_durable(&self, upto: u64) {
        let mut c = self.lock_commit();
        c.durable = c.durable.max(upto);
        drop(c);
        self.commit_cv.notify_all();
    }

    /// Fsyncs everything appended so far (briefly holding the append
    /// lock) and resets the `EveryN` cadence.
    fn force_sync_all(&self) -> Result<(), JournalError> {
        let mut a = self.lock_append();
        a.wal.sync()?;
        a.appends_since_sync = 0;
        let issued = a.next_ticket;
        drop(a);
        self.mark_durable(issued);
        Ok(())
    }

    /// Blocks until `ticket` is durable, electing this thread as the
    /// sync leader when none is in flight. The batch is everything
    /// appended while the previous sync was in flight (this stage runs
    /// *before* the apply turnstile, so waiting ops sit here, not
    /// there); the leader optionally holds the sync open `max_wait`
    /// for up to `max_batch` appends, then syncs the segment file
    /// *outside* the append lock and wakes every follower its sync
    /// covered — the group commit.
    fn group_commit_wait(&self, ticket: u64) -> Result<(), JournalError> {
        let gc = self.config.group_commit;
        let mut c = self.lock_commit();
        loop {
            if c.durable >= ticket {
                return Ok(());
            }
            self.check_crashed()?;
            if c.leader {
                // A sync is in flight; it (or the next round) covers us.
                let (g, _) = self.recover_poison(self.commit_cv.wait_timeout(c, CRASH_POLL));
                c = g;
                continue;
            }
            c.leader = true;
            if !gc.max_wait.is_zero() {
                let deadline = Instant::now() + gc.max_wait;
                while c.appended - c.durable < gc.max_batch.max(1) {
                    let now = Instant::now();
                    if now >= deadline || self.crashed.load(Ordering::SeqCst) {
                        break;
                    }
                    let (g, _) =
                        self.recover_poison(self.commit_cv.wait_timeout(c, deadline - now));
                    c = g;
                }
            }
            let already_durable = c.durable;
            let target = c.appended.min(already_durable + gc.max_batch.max(1));
            let file = Arc::clone(&c.file);
            drop(c);
            let synced = file.sync_all();
            c = self.lock_commit();
            c.leader = false;
            match synced {
                Ok(()) => {
                    c.durable = c.durable.max(target);
                    let m = StoreMetrics::get();
                    m.wal_group_commits.inc();
                    m.wal_batch_size.observe(target - already_durable);
                }
                Err(e) => {
                    // A failed fsync may have dropped the dirty pages;
                    // a later "successful" sync could silently lose the
                    // batch. Poison the store instead of retrying.
                    self.crashed.store(true, Ordering::SeqCst);
                    drop(c);
                    self.commit_cv.notify_all();
                    return Err(JournalError::Storage(e));
                }
            }
            drop(c);
            self.commit_cv.notify_all();
            c = self.lock_commit();
        }
    }

    /// The durability stage of the write path, run *between* the append
    /// and the apply: the after-append crash site, then the policy's
    /// durability wait. Running it before the serialized apply is what
    /// lets group-commit batches form — ops waiting out a sync overlap
    /// each other here instead of draining one by one through the
    /// turnstile first.
    fn commit_durable(&self, ticket: u64) -> Result<(), JournalError> {
        if self.crash_fires(CrashSite::AfterWalAppend).is_some() {
            // The operation is durable (force the sync — mid-batch this
            // also covers every in-flight neighbour; neighbours already
            // past their durability wait may still ack, later tickets
            // are journaled but never acknowledged) and never applied
            // in this process.
            self.force_sync_all()?;
            self.crashed.store(true, Ordering::SeqCst);
            self.commit_cv.notify_all();
            return Err(JournalError::Crashed);
        }
        match self.config.fsync {
            FsyncPolicy::Always => self.group_commit_wait(ticket),
            // `EveryN` syncs inline at the append (the cadence counter
            // lives under the append lock); `Never` never does.
            FsyncPolicy::Never | FsyncPolicy::EveryN(_) => Ok(()),
        }
    }

    /// The post-apply tail of the write path: metrics and the
    /// auto-checkpoint, which must follow the op's own apply (the
    /// checkpoint quiesces the turnstile through its own ticket).
    fn finish(&self, record_payload_len: usize, checkpoint_due: bool) -> Result<(), JournalError> {
        let m = StoreMetrics::get();
        m.wal_appends.inc();
        m.wal_bytes.add(RECORD_OVERHEAD + record_payload_len as u64);
        if checkpoint_due {
            self.maybe_auto_checkpoint()?;
        }
        Ok(())
    }

    /// Re-checks the auto-checkpoint threshold under the append lock
    /// and checkpoints if still due (a concurrent op may have beaten us
    /// to it).
    fn maybe_auto_checkpoint(&self) -> Result<(), JournalError> {
        let mut a = self.lock_append();
        self.check_crashed()?;
        if self.config.checkpoint_every > 0
            && a.frames_since_checkpoint >= self.config.checkpoint_every
        {
            self.checkpoint_locked(&mut a)?;
        }
        Ok(())
    }

    fn checkpoint_locked(&self, a: &mut AppendState) -> Result<(), JournalError> {
        // Quiesce: the append lock blocks new tickets; draining the
        // turnstile makes the aggregator equal the WAL prefix exactly,
        // so the snapshot and the rotation point agree.
        self.wait_applied_through(a.next_ticket)?;
        // Rotate first: records appended after this critical section go
        // to the new segment, which is exactly the set the checkpoint
        // does not capture.
        a.wal.sync()?;
        a.appends_since_sync = 0;
        self.mark_durable(a.next_ticket);
        let new_seq = a.wal.seq() + 1;
        a.wal = SegmentWriter::create(&self.dir, new_seq)?;
        {
            let mut c = self.lock_commit();
            c.file = a.wal.file();
        }

        let stats = self.aggregator.stats();
        let ckpt = Checkpoint {
            epoch: stats.epoch,
            frames: stats.frames,
            records: stats.records,
            next_touch: a.dedup.next_touch(),
            wal_seq: new_seq,
            dedup: a.dedup.entries(),
            snapshot: self.aggregator.encoded_snapshot().as_ref().clone(),
        };
        let tmp = ckpt.write_temp(&self.dir)?;
        if self.crash_fires(CrashSite::MidCheckpoint).is_some() {
            // The temp file is on disk but was never installed; recovery
            // discards it and falls back to the previous checkpoint.
            self.crashed.store(true, Ordering::SeqCst);
            return Err(JournalError::Crashed);
        }
        Checkpoint::commit_temp(&self.dir, &tmp)?;
        // The checkpoint is installed; from here on nothing can fail
        // it. Deleting subsumed segments is garbage collection — a
        // failure leaves stale segments recovery already knows to skip,
        // and the next checkpoint retries the deletion.
        let mut gc_errors = 0u64;
        match list_segments(&self.dir) {
            Ok(segments) => {
                for (seq, path) in segments {
                    if seq < new_seq && fs::remove_file(&path).is_err() {
                        gc_errors += 1;
                    }
                }
            }
            Err(_) => gc_errors += 1,
        }
        if wal::sync_dir(&self.dir).is_err() {
            // Only the deletions' durability is at stake (commit_temp
            // synced the rename); stale segments are harmless.
            gc_errors += 1;
        }
        if gc_errors > 0 {
            StoreMetrics::get().checkpoint_gc_errors.add(gc_errors);
        }
        a.frames_since_checkpoint = 0;
        StoreMetrics::get().checkpoints.inc();
        Ok(())
    }
}

impl ProfileJournal for ProfileStore {
    fn ingest_frame(
        &self,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<(FrameKind, usize), JournalError> {
        self.check_crashed()?;
        // Partition before journaling: with concurrent appenders a bad
        // frame can no longer be truncated back off the log, so it must
        // prove itself before it is written — and the decoded buckets
        // ride along in `scratch` so the apply stage doesn't decode the
        // frame a second time.
        let (kind, _) = self.aggregator.partition_frame(bytes, scratch)?;
        let payload = encode_frame(bytes);
        let (ticket, checkpoint_due) = {
            let mut a = self.lock_append();
            self.check_crashed()?;
            let ticket = self.append_locked(&mut a, &payload)?;
            a.frames_since_checkpoint += 1;
            let due = self.config.checkpoint_every > 0
                && a.frames_since_checkpoint >= self.config.checkpoint_every;
            (ticket, due)
        };
        self.commit_durable(ticket)?;
        let records =
            self.apply_in_order(ticket, || Ok(self.aggregator.apply_partitioned(scratch)))?;
        self.finish(payload.len(), checkpoint_due)?;
        Ok((kind, records))
    }

    fn ingest_sequenced(
        &self,
        client_id: u64,
        seq: u64,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<SeqIngest, JournalError> {
        self.check_crashed()?;
        // Bad frame beats duplicate, as in the in-memory journal. The
        // partition doubles as the apply stage's decoded input.
        let (kind, _) = self.aggregator.partition_frame(bytes, scratch)?;
        let mut a = self.lock_append();
        self.check_crashed()?;
        let last = a.dedup.last_seq(client_id).unwrap_or(0);
        if seq <= last {
            let issued = a.next_ticket;
            drop(a);
            // A duplicate changes nothing and is not journaled, but its
            // ack carries the original's promise: applied, and (under
            // `Always`) durable — the original may still be in flight
            // between its append and its batch's sync.
            self.wait_applied_through(issued)?;
            if self.config.fsync == FsyncPolicy::Always {
                self.group_commit_wait(issued)?;
            }
            return Ok(SeqIngest::Duplicate);
        }
        let payload = encode_seq_frame(client_id, seq, bytes);
        let ticket = self.append_locked(&mut a, &payload)?;
        // Recorded under the same lock as the append, so the dedup
        // check/record pair is atomic against racing pushes of the same
        // client — and the table's touch order is WAL record order,
        // which is what replay reproduces.
        a.dedup.record(client_id, seq);
        a.frames_since_checkpoint += 1;
        let checkpoint_due = self.config.checkpoint_every > 0
            && a.frames_since_checkpoint >= self.config.checkpoint_every;
        drop(a);
        self.commit_durable(ticket)?;
        let records =
            self.apply_in_order(ticket, || Ok(self.aggregator.apply_partitioned(scratch)))?;
        self.finish(payload.len(), checkpoint_due)?;
        Ok(SeqIngest::Applied { kind, records })
    }

    fn advance_epoch(&self) -> Result<u64, JournalError> {
        self.check_crashed()?;
        let mut a = self.lock_append();
        self.check_crashed()?;
        // The append lock serializes epoch tickets, and `next_epoch`
        // counts the advances already journaled (applied or not), so
        // the post-advance epoch is knowable at append time.
        let epoch_after = a.next_epoch + 1;
        let payload = encode_epoch(epoch_after);
        let ticket = self.append_locked(&mut a, &payload)?;
        a.next_epoch = epoch_after;
        drop(a);
        self.commit_durable(ticket)?;
        let advanced = self.apply_in_order(ticket, || Ok(self.aggregator.advance_epoch()))?;
        debug_assert_eq!(advanced, epoch_after);
        self.finish(payload.len(), false)?;
        Ok(advanced)
    }

    fn dedup_usage(&self) -> DedupUsage {
        let a = self.lock_append();
        DedupUsage {
            clients: a.dedup.len(),
            max_seq: a.dedup.max_seq(),
        }
    }

    fn flush(&self) -> Result<(), JournalError> {
        if !self.wal_dirty() {
            return Ok(());
        }
        self.sync_now()?;
        StoreMetrics::get().wal_shutdown_syncs.inc();
        Ok(())
    }
}
