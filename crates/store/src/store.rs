//! [`ProfileStore`]: the durable [`ProfileJournal`] implementation.
//!
//! Every accepted operation is appended to the WAL *before* the server
//! acknowledges it, and applied to the aggregator under the same lock
//! the append holds — so the log's record order is exactly the apply
//! order, and replaying the log through the identical
//! [`ShardedAggregator::ingest_frame_bytes`] path reproduces the
//! aggregator bit-for-bit. Periodic checkpoints bound replay time:
//! a checkpoint rotates the WAL, snapshots graph + epoch + counters +
//! dedup table in that same critical section, installs the snapshot
//! atomically, and deletes the segments it subsumes.
//!
//! ## Recovery invariant
//!
//! After `open`, the store's observable state — the encoded snapshot,
//! the decay epoch, the dedup table (entries *and* recency counter),
//! and the lifetime frame/record counters — is byte-identical to an
//! uninterrupted store that ingested exactly the durable prefix of
//! operations. A torn or corrupt WAL tail is detected by CRC, truncated
//! away, and reported; it is never an error and never half-applied.
//!
//! ## Crash injection
//!
//! For tests, a [`FaultSchedule`] armed with a [`CrashSpec`] makes the
//! store simulate a power loss at a scripted [`CrashSite`]: the write
//! path performs exactly the disk writes that would have landed, sets a
//! poisoned flag, and fails every later operation with
//! [`JournalError::Crashed`] until the directory is reopened.

use crate::checkpoint::{Checkpoint, CKPT_TMP_FILE};
use crate::metrics::StoreMetrics;
use crate::wal::{
    self, decode_op, encode_epoch, encode_frame, encode_seq_frame, list_segments, scan_segment,
    SegmentWriter, WalOp, RECORD_OVERHEAD, WAL_HEADER_LEN,
};
use cbs_profiled::{
    CrashSite, CrashSpec, DcgCodec, DedupEntry, DedupTable, DedupUsage, FaultSchedule, FrameKind,
    IngestScratch, JournalError, ProfileJournal, SeqIngest, ShardedAggregator,
};
use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex, MutexGuard};

/// When the WAL file is fsynced relative to the acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync before every ack: an acked operation survives power loss.
    Always,
    /// Never sync explicitly: an acked operation survives a process
    /// crash (the write reached the kernel) but not a power loss.
    Never,
    /// Sync every `n`-th append: bounded loss window, near-`Never`
    /// throughput.
    EveryN(u64),
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(Self::Always),
            "never" => Ok(Self::Never),
            n => n
                .parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .map(Self::EveryN)
                .ok_or_else(|| format!("fsync policy must be 'always', 'never', or a count: {s}")),
        }
    }
}

/// Durable-store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Applied frames between automatic checkpoints (`0` = only
    /// explicit [`ProfileStore::checkpoint_now`] calls).
    pub checkpoint_every: u64,
    /// Dedup-table client cap (`0` = unbounded).
    pub dedup_capacity: usize,
    /// Largest WAL record payload accepted (a guard against a
    /// misconfigured frame limit upstream).
    pub max_record_bytes: usize,
    /// Fault schedule carrying scripted crash points, if any.
    pub faults: Option<Arc<Mutex<FaultSchedule>>>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 1024,
            dedup_capacity: DedupTable::DEFAULT_CAPACITY,
            max_record_bytes: 64 << 20,
            faults: None,
        }
    }
}

/// What recovery found and did while opening the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The committed checkpoint's epoch, when one was loaded.
    pub checkpoint_epoch: Option<u64>,
    /// WAL segments scanned (checkpoint-subsumed leftovers excluded).
    pub segments_scanned: usize,
    /// Stale segments (subsumed by the checkpoint) deleted.
    pub stale_segments_removed: usize,
    /// Frames re-applied from the WAL.
    pub replayed_frames: u64,
    /// Edge records those frames carried.
    pub replayed_records: u64,
    /// Epoch advances re-applied from the WAL.
    pub replayed_epochs: u64,
    /// `true` when a torn/corrupt tail was truncated away.
    pub truncated_tail: bool,
    /// Where the truncation happened: (segment seq, byte offset).
    pub truncated_at: Option<(u64, u64)>,
}

#[derive(Debug)]
struct StoreInner {
    wal: SegmentWriter,
    dedup: DedupTable,
    frames_since_checkpoint: u64,
    appends_since_sync: u64,
    crashed: bool,
}

/// The durable profile journal. See the module docs.
#[derive(Debug)]
pub struct ProfileStore {
    dir: PathBuf,
    aggregator: Arc<ShardedAggregator>,
    config: StoreConfig,
    recovery: RecoveryReport,
    inner: Mutex<StoreInner>,
}

impl ProfileStore {
    /// Opens (or initializes) the store in `dir`, recovering
    /// checkpoint + WAL tail into `aggregator` — which must be fresh
    /// (zero frames, epoch zero): recovery rebuilds it from disk.
    ///
    /// # Errors
    ///
    /// I/O failures, a corrupt checkpoint (`InvalidData`), or a
    /// non-fresh aggregator (`InvalidInput`). A torn/corrupt WAL tail
    /// is *not* an error — it is truncated and reported in the
    /// [`RecoveryReport`].
    pub fn open(
        dir: impl Into<PathBuf>,
        aggregator: Arc<ShardedAggregator>,
        config: StoreConfig,
    ) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let stats = aggregator.stats();
        if stats.frames != 0 || stats.epoch != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "ProfileStore::open requires a fresh aggregator (recovery rebuilds it)",
            ));
        }
        // A crash can leave a prepared-but-uncommitted checkpoint temp
        // behind; it was never acknowledged as installed, so drop it.
        let _ = fs::remove_file(dir.join(CKPT_TMP_FILE));

        let mut report = RecoveryReport::default();
        let mut dedup = DedupTable::new(config.dedup_capacity);
        let mut scratch = IngestScratch::new();
        let (mut base_frames, mut base_records) = (0u64, 0u64);
        let mut min_seq = 0u64;

        if let Some(ckpt) = Checkpoint::load(&dir)? {
            // Ingest the snapshot at epoch zero (undecayed — the bytes
            // are post-catch-up), then stamp the clock without decaying.
            aggregator
                .ingest_frame_bytes(&ckpt.snapshot, &mut scratch)
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("checkpoint snapshot failed to decode: {e}"),
                    )
                })?;
            aggregator.restore_clock(ckpt.epoch);
            dedup.restore(ckpt.next_touch, &ckpt.dedup);
            base_frames = ckpt.frames;
            base_records = ckpt.records;
            min_seq = ckpt.wal_seq;
            report.checkpoint_epoch = Some(ckpt.epoch);
        }

        let mut max_seq_seen = min_seq;
        let mut live = Vec::new();
        for (seq, path) in list_segments(&dir)? {
            max_seq_seen = max_seq_seen.max(seq);
            if seq < min_seq {
                // Subsumed by the checkpoint: a crash between the
                // checkpoint rename and segment deletion left it here.
                fs::remove_file(&path)?;
                report.stale_segments_removed += 1;
            } else {
                live.push((seq, path));
            }
        }

        let mut cut: Option<(usize, u64, PathBuf)> = None; // (live idx, offset, path)
        'segments: for (idx, (_seq, path)) in live.iter().enumerate() {
            report.segments_scanned += 1;
            let scan = scan_segment(path)?;
            for record in &scan.records {
                let applied = match decode_op(&record.payload) {
                    Some(WalOp::Frame(frame)) => {
                        Some(aggregator.ingest_frame_bytes(frame, &mut scratch))
                    }
                    Some(WalOp::SeqFrame { client, seq, frame }) => {
                        // The writer only journals applied sequences, so
                        // a replayed pair is always new relative to the
                        // restored table; the guard is pure defense.
                        if dedup.last_seq(client).is_none_or(|last| seq > last) {
                            let applied = aggregator.ingest_frame_bytes(frame, &mut scratch);
                            if applied.is_ok() {
                                dedup.record(client, seq);
                            }
                            Some(applied)
                        } else {
                            None
                        }
                    }
                    Some(WalOp::Epoch(_)) => {
                        aggregator.advance_epoch();
                        report.replayed_epochs += 1;
                        None
                    }
                    None => {
                        // CRC-intact but undecodable: corruption (or a
                        // crash between an append and its failed-apply
                        // truncation). Cut here.
                        cut = Some((idx, record.offset, path.clone()));
                        break 'segments;
                    }
                };
                match applied {
                    Some(Ok((_, records))) => {
                        report.replayed_frames += 1;
                        report.replayed_records += records as u64;
                    }
                    Some(Err(_)) => {
                        // Same policy as an undecodable payload.
                        cut = Some((idx, record.offset, path.clone()));
                        break 'segments;
                    }
                    None => {}
                }
            }
            if scan.corrupt {
                cut = Some((idx, scan.valid_len, path.clone()));
                break 'segments;
            }
        }

        if let Some((idx, offset, path)) = cut {
            let seq = live[idx].0;
            if offset < WAL_HEADER_LEN {
                // Even the header is gone; nothing in the file is real.
                fs::remove_file(&path)?;
            } else {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(offset)?;
                f.sync_all()?;
            }
            // Anything after the cut never became durable in order;
            // later segments (if any) are unreachable tail too.
            for (_, later) in &live[idx + 1..] {
                fs::remove_file(later)?;
            }
            wal::sync_dir(&dir)?;
            report.truncated_tail = true;
            report.truncated_at = Some((seq, offset));
            StoreMetrics::get().recovery_truncated_tail.inc();
        }

        aggregator.restore_counters(
            base_frames + report.replayed_frames,
            base_records + report.replayed_records,
        );
        StoreMetrics::get()
            .recovery_replayed_frames
            .add(report.replayed_frames);

        let wal = SegmentWriter::create(&dir, max_seq_seen + 1)?;
        Ok(Self {
            dir,
            aggregator,
            config,
            inner: Mutex::new(StoreInner {
                wal,
                dedup,
                // A long replayed tail means the last checkpoint is
                // stale; carry the count so the next ingest can trigger
                // an automatic checkpoint promptly.
                frames_since_checkpoint: report.replayed_frames,
                appends_since_sync: 0,
                crashed: false,
            }),
            recovery: report,
        })
    }

    /// The aggregator this store recovers into and applies onto.
    pub fn aggregator(&self) -> &Arc<ShardedAggregator> {
        &self.aggregator
    }

    /// What recovery found when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The store's data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The dedup table's entries (sorted by client id) — exposed so
    /// tests can assert bit-identical recovery of the table.
    pub fn dedup_entries(&self) -> Vec<DedupEntry> {
        self.lock_inner().dedup.entries()
    }

    /// The dedup table's touch counter.
    pub fn dedup_next_touch(&self) -> u64 {
        self.lock_inner().dedup.next_touch()
    }

    /// Takes a checkpoint now: rotates the WAL, snapshots the merged
    /// graph + epoch + counters + dedup table, installs it atomically,
    /// and deletes the subsumed segments.
    ///
    /// # Errors
    ///
    /// [`JournalError::Storage`] on I/O failure, [`JournalError::Crashed`]
    /// after a scripted crash.
    pub fn checkpoint_now(&self) -> Result<(), JournalError> {
        let mut inner = self.lock_inner();
        if inner.crashed {
            return Err(JournalError::Crashed);
        }
        self.checkpoint_locked(&mut inner)
    }

    fn lock_inner(&self) -> MutexGuard<'_, StoreInner> {
        // A panic while holding the lock leaves disk state unknown;
        // poison the store rather than guessing.
        self.inner.lock().unwrap_or_else(|e| {
            let mut g = e.into_inner();
            g.crashed = true;
            g
        })
    }

    fn crash_fires(&self, site: CrashSite) -> Option<CrashSpec> {
        let faults = self.config.faults.as_ref()?;
        faults
            .lock()
            .expect("fault schedule lock")
            .crash_fires(site)
    }

    /// Appends `payload`, honouring the scripted crash sites, and
    /// returns the pre-append offset for a failed-apply rollback.
    fn append_record(&self, inner: &mut StoreInner, payload: &[u8]) -> Result<u64, JournalError> {
        if payload.len() > self.config.max_record_bytes {
            return Err(JournalError::Storage(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL record of {} bytes exceeds max_record_bytes {}",
                    payload.len(),
                    self.config.max_record_bytes
                ),
            )));
        }
        if self.crash_fires(CrashSite::BeforeWalAppend).is_some() {
            inner.crashed = true;
            return Err(JournalError::Crashed);
        }
        if let Some(spec) = self.crash_fires(CrashSite::TornWalRecord) {
            inner.wal.append_torn(payload, spec.torn_keep)?;
            inner.crashed = true;
            return Err(JournalError::Crashed);
        }
        Ok(inner.wal.append(payload)?)
    }

    /// The post-apply half of the write path: durability (per policy),
    /// the after-append crash site, bookkeeping, auto-checkpoint.
    fn commit_applied(
        &self,
        inner: &mut StoreInner,
        record_payload_len: usize,
        counts_frame: bool,
    ) -> Result<(), JournalError> {
        if self.crash_fires(CrashSite::AfterWalAppend).is_some() {
            // The operation is durable (force the sync) but will never
            // be acknowledged.
            inner.wal.sync()?;
            inner.crashed = true;
            return Err(JournalError::Crashed);
        }
        match self.config.fsync {
            FsyncPolicy::Always => inner.wal.sync()?,
            FsyncPolicy::Never => {}
            FsyncPolicy::EveryN(n) => {
                inner.appends_since_sync += 1;
                if inner.appends_since_sync >= n {
                    inner.appends_since_sync = 0;
                    inner.wal.sync()?;
                }
            }
        }
        let m = StoreMetrics::get();
        m.wal_appends.inc();
        m.wal_bytes.add(RECORD_OVERHEAD + record_payload_len as u64);
        if counts_frame {
            inner.frames_since_checkpoint += 1;
            if self.config.checkpoint_every > 0
                && inner.frames_since_checkpoint >= self.config.checkpoint_every
            {
                self.checkpoint_locked(inner)?;
            }
        }
        Ok(())
    }

    fn checkpoint_locked(&self, inner: &mut StoreInner) -> Result<(), JournalError> {
        // Rotate first: records appended after this critical section go
        // to the new segment, which is exactly the set the checkpoint
        // does not capture.
        inner.wal.sync()?;
        let new_seq = inner.wal.seq() + 1;
        inner.wal = SegmentWriter::create(&self.dir, new_seq)?;

        let stats = self.aggregator.stats();
        let ckpt = Checkpoint {
            epoch: stats.epoch,
            frames: stats.frames,
            records: stats.records,
            next_touch: inner.dedup.next_touch(),
            wal_seq: new_seq,
            dedup: inner.dedup.entries(),
            snapshot: self.aggregator.encoded_snapshot().as_ref().clone(),
        };
        let tmp = ckpt.write_temp(&self.dir)?;
        if self.crash_fires(CrashSite::MidCheckpoint).is_some() {
            // The temp file is on disk but was never installed; recovery
            // discards it and falls back to the previous checkpoint.
            inner.crashed = true;
            return Err(JournalError::Crashed);
        }
        Checkpoint::commit_temp(&self.dir, &tmp)?;
        for (seq, path) in list_segments(&self.dir)? {
            if seq < new_seq {
                fs::remove_file(&path)?;
            }
        }
        wal::sync_dir(&self.dir)?;
        inner.frames_since_checkpoint = 0;
        StoreMetrics::get().checkpoints.inc();
        Ok(())
    }
}

impl ProfileJournal for ProfileStore {
    fn ingest_frame(
        &self,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<(FrameKind, usize), JournalError> {
        let mut inner = self.lock_inner();
        if inner.crashed {
            return Err(JournalError::Crashed);
        }
        let offset = self.append_record(&mut inner, &encode_frame(bytes))?;
        let (kind, records) = match self.aggregator.ingest_frame_bytes(bytes, scratch) {
            Ok(applied) => applied,
            Err(e) => {
                // Journal-then-apply: a bad frame was appended before
                // validation; un-append it. (A crash in between is
                // absorbed by recovery's cut-at-first-bad-record rule.)
                inner.wal.truncate_to(offset)?;
                return Err(e.into());
            }
        };
        self.commit_applied(&mut inner, 1 + bytes.len(), true)?;
        Ok((kind, records))
    }

    fn ingest_sequenced(
        &self,
        client_id: u64,
        seq: u64,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<SeqIngest, JournalError> {
        let mut inner = self.lock_inner();
        if inner.crashed {
            return Err(JournalError::Crashed);
        }
        let last = inner.dedup.last_seq(client_id).unwrap_or(0);
        if seq <= last {
            drop(inner);
            // Bad frame beats duplicate, as in the in-memory journal —
            // and duplicates are not journaled (they change nothing).
            DcgCodec::validate(bytes)?;
            return Ok(SeqIngest::Duplicate);
        }
        let payload = encode_seq_frame(client_id, seq, bytes);
        let offset = self.append_record(&mut inner, &payload)?;
        let (kind, records) = match self.aggregator.ingest_frame_bytes(bytes, scratch) {
            Ok(applied) => applied,
            Err(e) => {
                inner.wal.truncate_to(offset)?;
                return Err(e.into());
            }
        };
        inner.dedup.record(client_id, seq);
        self.commit_applied(&mut inner, payload.len(), true)?;
        Ok(SeqIngest::Applied { kind, records })
    }

    fn advance_epoch(&self) -> Result<u64, JournalError> {
        let mut inner = self.lock_inner();
        if inner.crashed {
            return Err(JournalError::Crashed);
        }
        // All mutation is serialized through this lock, so the epoch
        // after the advance is knowable before applying it.
        let epoch_after = self.aggregator.epoch() + 1;
        let payload = encode_epoch(epoch_after);
        self.append_record(&mut inner, &payload)?;
        let advanced = self.aggregator.advance_epoch();
        debug_assert_eq!(advanced, epoch_after);
        self.commit_applied(&mut inner, payload.len(), false)?;
        Ok(advanced)
    }

    fn dedup_usage(&self) -> DedupUsage {
        let inner = self.lock_inner();
        DedupUsage {
            clients: inner.dedup.len(),
            max_seq: inner.dedup.max_seq(),
        }
    }
}
