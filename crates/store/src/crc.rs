//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! checksum framing every WAL record and the checkpoint trailer.
//!
//! Implemented in-repo (table-driven, table built at compile time)
//! because the workspace is dependency-free by design. The parameters
//! match zlib's `crc32`, so `cksum`-style external tooling can verify
//! store files if ever needed.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// The CRC-32 of `bytes` (zlib-compatible).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"the quick brown fox");
        let mut bytes = b"the quick brown fox".to_vec();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), base, "flip at byte {i} bit {bit}");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
