//! The write-ahead log: CRC-framed, length-prefixed records in
//! sequence-numbered segment files.
//!
//! ## On-disk format
//!
//! A segment is named `wal-{seq:016x}.log` and starts with a 13-byte
//! header — magic `CBSW`, a format version byte, and the segment's
//! sequence number (u64 LE, cross-checked against the file name on
//! scan). Records follow back to back:
//!
//! ```text
//! | len: u32 LE | crc32(payload): u32 LE | payload (len bytes) |
//! ```
//!
//! The payload's first byte is an operation tag ([`REC_FRAME`],
//! [`REC_SEQ_FRAME`], [`REC_EPOCH`]); the rest is the operation body —
//! for frames, the raw CBSP wire bytes exactly as the client sent them,
//! so replay feeds the same codec path as live ingest.
//!
//! ## Torn-write discipline
//!
//! A crash can leave the last record half-written. [`scan_segment`]
//! accepts the longest prefix of intact records and reports everything
//! after the first bad length, bad CRC, or short read as corruption;
//! recovery truncates the file back to that prefix. Corruption is never
//! an error from the scan itself — only unreadable files are.

use crate::crc::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Segment header magic.
pub const WAL_MAGIC: [u8; 4] = *b"CBSW";
/// Segment format version.
pub const WAL_VERSION: u8 = 1;
/// Header length: magic + version + seq.
pub const WAL_HEADER_LEN: u64 = 4 + 1 + 8;
/// Per-record framing overhead: length prefix + CRC.
pub const RECORD_OVERHEAD: u64 = 4 + 4;

/// Payload tag: an unsequenced `OP_PUSH` frame (body = raw CBSP bytes).
pub const REC_FRAME: u8 = 1;
/// Payload tag: a sequenced `OP_PUSH_SEQ` frame (body = client id u64
/// BE, sequence u64 BE — the wire order — then raw CBSP bytes).
pub const REC_SEQ_FRAME: u8 = 2;
/// Payload tag: an epoch advance (body = the epoch *after* the advance,
/// u64 LE).
pub const REC_EPOCH: u8 = 3;

/// Hard ceiling a scan will believe for one record's length; anything
/// larger is treated as corruption (a torn or garbage length prefix).
pub const MAX_SCAN_RECORD_BYTES: u32 = 1 << 30;

/// The file name of segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:016x}.log")
}

/// Parses a segment file name back to its sequence number.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Every segment in `dir`, sorted by sequence number.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segments)
}

/// One decoded WAL operation, borrowed from a record payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalOp<'a> {
    /// An unsequenced frame: the raw CBSP bytes.
    Frame(&'a [u8]),
    /// A sequenced frame.
    SeqFrame {
        /// Client id.
        client: u64,
        /// Client sequence number.
        seq: u64,
        /// The raw CBSP bytes.
        frame: &'a [u8],
    },
    /// An epoch advance to this (post-advance) epoch.
    Epoch(u64),
}

/// Decodes a record payload into its operation, or `None` for an
/// unknown tag / short body (recovery treats that as corruption).
pub fn decode_op(payload: &[u8]) -> Option<WalOp<'_>> {
    let (&tag, body) = payload.split_first()?;
    match tag {
        REC_FRAME => Some(WalOp::Frame(body)),
        REC_SEQ_FRAME => {
            if body.len() < 16 {
                return None;
            }
            let client = u64::from_be_bytes(body[0..8].try_into().expect("8 bytes"));
            let seq = u64::from_be_bytes(body[8..16].try_into().expect("8 bytes"));
            Some(WalOp::SeqFrame {
                client,
                seq,
                frame: &body[16..],
            })
        }
        REC_EPOCH => {
            if body.len() != 8 {
                return None;
            }
            Some(WalOp::Epoch(u64::from_le_bytes(
                body.try_into().expect("8 bytes"),
            )))
        }
        _ => None,
    }
}

/// Encodes a [`REC_SEQ_FRAME`] payload.
pub fn encode_seq_frame(client: u64, seq: u64, frame: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + 16 + frame.len());
    payload.push(REC_SEQ_FRAME);
    payload.extend_from_slice(&client.to_be_bytes());
    payload.extend_from_slice(&seq.to_be_bytes());
    payload.extend_from_slice(frame);
    payload
}

/// Encodes a [`REC_FRAME`] payload.
pub fn encode_frame(frame: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + frame.len());
    payload.push(REC_FRAME);
    payload.extend_from_slice(frame);
    payload
}

/// Encodes a [`REC_EPOCH`] payload.
pub fn encode_epoch(epoch_after: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(REC_EPOCH);
    payload.extend_from_slice(&epoch_after.to_le_bytes());
    payload
}

/// An open segment being appended to.
///
/// The file handle is shared (`Arc<File>`) so a group-commit leader can
/// `sync_all` the segment *without* holding the append lock that guards
/// the writer itself; appends and syncs on the same `File` are safe to
/// overlap (`write` and `fsync` are independent syscalls).
#[derive(Debug)]
pub struct SegmentWriter {
    file: Arc<File>,
    path: PathBuf,
    seq: u64,
    len: u64,
}

impl SegmentWriter {
    /// Creates segment `seq` in `dir` (failing if it already exists),
    /// writes its header, and syncs the directory so the new name is
    /// durable.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn create(dir: &Path, seq: u64) -> io::Result<Self> {
        let path = dir.join(segment_file_name(seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        header[0..4].copy_from_slice(&WAL_MAGIC);
        header[4] = WAL_VERSION;
        header[5..13].copy_from_slice(&seq.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        sync_dir(dir)?;
        Ok(Self {
            file: Arc::new(file),
            path,
            seq,
            len: WAL_HEADER_LEN,
        })
    }

    /// A shared handle to the segment file, for syncing it outside the
    /// lock that guards the writer.
    pub fn file(&self) -> Arc<File> {
        Arc::clone(&self.file)
    }

    /// The segment's sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Bytes written so far (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no record has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == WAL_HEADER_LEN
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, returning the offset the record starts at
    /// (so a failed apply can [`truncate_to`](Self::truncate_to) it
    /// back off). Does **not** sync; that is the fsync policy's call.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the segment length is only advanced
    /// on success.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let offset = self.len;
        let mut framed = Vec::with_capacity(RECORD_OVERHEAD as usize + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        (&*self.file).write_all(&framed)?;
        self.len += framed.len() as u64;
        Ok(offset)
    }

    /// Appends a deliberately torn record: the framing and only the
    /// first `keep` payload bytes reach the file, simulating a power
    /// loss mid-write (the [`crate::CrashSite::TornWalRecord`] crash
    /// site). The write is synced so the torn state is what a restart
    /// observes.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append_torn(&mut self, payload: &[u8], keep: usize) -> io::Result<()> {
        let keep = keep.min(payload.len());
        let mut framed = Vec::with_capacity(RECORD_OVERHEAD as usize + keep);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(&payload[..keep]);
        (&*self.file).write_all(&framed)?;
        self.len += framed.len() as u64;
        self.file.sync_all()
    }

    /// Truncates the segment back to `offset` (undoing an append whose
    /// apply failed) and re-seats the write cursor.
    ///
    /// # Errors
    ///
    /// Propagates truncation failures.
    pub fn truncate_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.set_len(offset)?;
        (&*self.file).seek(SeekFrom::Start(offset))?;
        self.len = offset;
        Ok(())
    }

    /// Fsyncs the segment file.
    ///
    /// # Errors
    ///
    /// Propagates the sync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// One intact record found by a scan.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Byte offset of the record's length prefix within the segment.
    pub offset: u64,
    /// The record payload (tag + body).
    pub payload: Vec<u8>,
}

/// The result of scanning one segment.
#[derive(Debug)]
pub struct SegmentScan {
    /// Sequence number (from the file name).
    pub seq: u64,
    /// The scanned path.
    pub path: PathBuf,
    /// The longest prefix of intact records.
    pub records: Vec<WalRecord>,
    /// Offset one past the last intact record — the length a recovery
    /// truncation restores the file to. Zero when the header itself is
    /// bad (the whole file is garbage).
    pub valid_len: u64,
    /// `true` when anything after the intact prefix was found: a torn
    /// or corrupt record, trailing garbage, or a bad header.
    pub corrupt: bool,
    /// The file's actual length.
    pub file_len: u64,
}

/// Scans a segment, accepting the longest intact prefix of records.
/// Corruption is reported, not returned as an error.
///
/// # Errors
///
/// Only for unreadable files or a file-name/seq mismatch with its own
/// header (which indicates tampering rather than a torn write).
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let seq = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_segment_file_name)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("not a WAL segment name: {}", path.display()),
            )
        })?;
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;

    let header_ok = bytes.len() >= WAL_HEADER_LEN as usize
        && bytes[0..4] == WAL_MAGIC
        && bytes[4] == WAL_VERSION
        && u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes")) == seq;
    if !header_ok {
        return Ok(SegmentScan {
            seq,
            path: path.to_path_buf(),
            records: Vec::new(),
            valid_len: 0,
            corrupt: true,
            file_len,
        });
    }

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut corrupt = false;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < RECORD_OVERHEAD as usize {
            corrupt = true; // torn framing
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_SCAN_RECORD_BYTES {
            corrupt = true; // garbage length
            break;
        }
        let end = RECORD_OVERHEAD as usize + len as usize;
        if rest.len() < end {
            corrupt = true; // torn payload
            break;
        }
        let payload = &rest[RECORD_OVERHEAD as usize..end];
        if crc32(payload) != crc {
            corrupt = true; // bit rot or torn overwrite
            break;
        }
        records.push(WalRecord {
            offset: pos as u64,
            payload: payload.to_vec(),
        });
        pos += end;
    }
    Ok(SegmentScan {
        seq,
        path: path.to_path_buf(),
        valid_len: if records.is_empty() && corrupt && pos == WAL_HEADER_LEN as usize {
            // Header intact, first record bad: keep the header.
            WAL_HEADER_LEN
        } else {
            pos as u64
        },
        records,
        corrupt,
        file_len,
    })
}

/// Fsyncs a directory so renames/creations within it are durable.
///
/// # Errors
///
/// Propagates open/sync failures.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir::TestDir;

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(0x2a), "wal-000000000000002a.log");
        assert_eq!(
            parse_segment_file_name("wal-000000000000002a.log"),
            Some(0x2a)
        );
        assert_eq!(parse_segment_file_name("wal-2a.log"), None);
        assert_eq!(parse_segment_file_name("checkpoint.cbsc"), None);
    }

    #[test]
    fn append_scan_round_trips_records_and_offsets() {
        let dir = TestDir::new("wal-roundtrip");
        let mut w = SegmentWriter::create(dir.path(), 3).unwrap();
        let a = w.append(&encode_frame(b"frame-a")).unwrap();
        let b = w.append(&encode_epoch(7)).unwrap();
        assert_eq!(a, WAL_HEADER_LEN);
        assert!(b > a);
        w.sync().unwrap();

        let scan = scan_segment(w.path()).unwrap();
        assert_eq!(scan.seq, 3);
        assert!(!scan.corrupt);
        assert_eq!(scan.valid_len, w.len());
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].offset, a);
        assert_eq!(
            decode_op(&scan.records[0].payload),
            Some(WalOp::Frame(b"frame-a"))
        );
        assert_eq!(decode_op(&scan.records[1].payload), Some(WalOp::Epoch(7)));
    }

    #[test]
    fn truncate_to_undoes_an_append() {
        let dir = TestDir::new("wal-truncate");
        let mut w = SegmentWriter::create(dir.path(), 0).unwrap();
        w.append(&encode_frame(b"keep")).unwrap();
        let offset = w.append(&encode_frame(b"undo")).unwrap();
        w.truncate_to(offset).unwrap();
        w.append(&encode_frame(b"next")).unwrap();
        w.sync().unwrap();

        let scan = scan_segment(w.path()).unwrap();
        assert!(!scan.corrupt);
        let ops: Vec<_> = scan
            .records
            .iter()
            .map(|r| decode_op(&r.payload).unwrap())
            .map(|op| match op {
                WalOp::Frame(f) => f.to_vec(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ops, vec![b"keep".to_vec(), b"next".to_vec()]);
    }

    #[test]
    fn torn_record_is_cut_at_the_intact_prefix() {
        let dir = TestDir::new("wal-torn");
        let mut w = SegmentWriter::create(dir.path(), 0).unwrap();
        w.append(&encode_frame(b"whole")).unwrap();
        let cut_at = w.len();
        w.append_torn(&encode_frame(b"torn-record"), 3).unwrap();

        let scan = scan_segment(w.path()).unwrap();
        assert!(scan.corrupt);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, cut_at);
        assert!(scan.file_len > cut_at);
    }

    #[test]
    fn bad_header_is_wholly_corrupt() {
        let dir = TestDir::new("wal-badheader");
        let path = dir.path().join(segment_file_name(5));
        fs::write(&path, b"not a wal").unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.corrupt);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn seq_frame_payload_round_trips() {
        let p = encode_seq_frame(0xDEAD, 42, b"cbsp-bytes");
        match decode_op(&p) {
            Some(WalOp::SeqFrame { client, seq, frame }) => {
                assert_eq!(client, 0xDEAD);
                assert_eq!(seq, 42);
                assert_eq!(frame, b"cbsp-bytes");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(decode_op(&[REC_SEQ_FRAME, 1, 2, 3]), None, "short body");
        assert_eq!(decode_op(&[99, 0]), None, "unknown tag");
        assert_eq!(decode_op(&[]), None, "empty payload");
    }
}
