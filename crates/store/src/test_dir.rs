//! A scratch-directory helper for the store's tests (the workspace has
//! no tempfile dependency by design). Unique per process × counter,
//! removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named directory under the system temp dir, deleted when
/// dropped.
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Creates `<tmp>/cbs-store-<label>-<pid>-<n>`.
    pub fn new(label: &str) -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("cbs-store-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create test dir");
        Self { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
