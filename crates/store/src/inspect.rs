//! Offline inspection of a store directory — the read side of
//! `dcgtool store inspect`. Never mutates anything.

use crate::checkpoint::Checkpoint;
use crate::wal::{decode_op, list_segments, scan_segment, WalOp};
use std::io;
use std::path::{Path, PathBuf};

/// Summary of the committed checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Decay epoch at capture.
    pub epoch: u64,
    /// Lifetime frames at capture.
    pub frames: u64,
    /// Lifetime edge records at capture.
    pub records: u64,
    /// Dedup clients captured.
    pub dedup_clients: usize,
    /// Encoded snapshot size, bytes.
    pub snapshot_bytes: usize,
    /// First WAL segment postdating the capture.
    pub wal_seq: u64,
}

/// Summary of one WAL segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Sequence number.
    pub seq: u64,
    /// File path.
    pub path: PathBuf,
    /// File size, bytes.
    pub bytes: u64,
    /// Unsequenced frame records.
    pub frames: usize,
    /// Sequenced frame records.
    pub seq_frames: usize,
    /// Epoch-advance records.
    pub epochs: usize,
    /// Records with an unknown tag or short body (counted as corrupt).
    pub undecodable: usize,
    /// `true` when the segment has a torn/corrupt tail (or header).
    pub corrupt: bool,
}

/// Everything `store inspect` reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInspection {
    /// The committed checkpoint, if any.
    pub checkpoint: Option<CheckpointInfo>,
    /// Every WAL segment, in sequence order.
    pub segments: Vec<SegmentInfo>,
}

impl StoreInspection {
    /// Total replayable frame records (both kinds) across segments the
    /// checkpoint does not subsume.
    pub fn tail_frames(&self) -> usize {
        let min_seq = self.checkpoint.as_ref().map_or(0, |c| c.wal_seq);
        self.segments
            .iter()
            .filter(|s| s.seq >= min_seq)
            .map(|s| s.frames + s.seq_frames)
            .sum()
    }
}

/// Inspects the store directory at `dir` read-only.
///
/// # Errors
///
/// I/O failures and a corrupt checkpoint (`InvalidData`) — the same
/// error `ProfileStore::open` would report.
pub fn inspect(dir: &Path) -> io::Result<StoreInspection> {
    let checkpoint = Checkpoint::load(dir)?.map(|c| CheckpointInfo {
        epoch: c.epoch,
        frames: c.frames,
        records: c.records,
        dedup_clients: c.dedup.len(),
        snapshot_bytes: c.snapshot.len(),
        wal_seq: c.wal_seq,
    });
    let mut segments = Vec::new();
    for (seq, path) in list_segments(dir)? {
        let scan = scan_segment(&path)?;
        let mut info = SegmentInfo {
            seq,
            path,
            bytes: scan.file_len,
            frames: 0,
            seq_frames: 0,
            epochs: 0,
            undecodable: 0,
            corrupt: scan.corrupt,
        };
        for record in &scan.records {
            match decode_op(&record.payload) {
                Some(WalOp::Frame(_)) => info.frames += 1,
                Some(WalOp::SeqFrame { .. }) => info.seq_frames += 1,
                Some(WalOp::Epoch(_)) => info.epochs += 1,
                None => info.undecodable += 1,
            }
        }
        if info.undecodable > 0 {
            info.corrupt = true;
        }
        segments.push(info);
    }
    Ok(StoreInspection {
        checkpoint,
        segments,
    })
}
