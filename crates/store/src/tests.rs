//! Crash-recovery equivalence and WAL-mutilation property tests.
//!
//! The invariant under test everywhere: a reopened store's observable
//! state — encoded snapshot bytes, decay epoch, dedup table (entries
//! and touch counter), lifetime counters — is **byte-identical** to an
//! uninterrupted aggregator that ingested exactly the durable prefix of
//! operations, and recovery never panics or half-applies, whatever the
//! on-disk mutilation.

use crate::store::{FsyncPolicy, ProfileStore, StoreConfig};
use crate::test_dir::TestDir;
use crate::wal::{self, list_segments, scan_segment, RECORD_OVERHEAD, WAL_HEADER_LEN};
use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::CallEdge;
use cbs_profiled::{
    AggregatorConfig, CrashSite, CrashSpec, DcgCodec, FaultSchedule, IngestScratch, JournalError,
    ProfileJournal, SeqIngest, ShardedAggregator,
};
use std::fs;
use std::path::Path;
use std::sync::Arc;

fn agg(config: AggregatorConfig) -> Arc<ShardedAggregator> {
    Arc::new(ShardedAggregator::new(config))
}

fn decaying() -> AggregatorConfig {
    AggregatorConfig {
        shards: 4,
        decay_factor: 0.9,
        min_weight: 1e-9,
    }
}

fn fast_config() -> StoreConfig {
    StoreConfig {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0, // only explicit checkpoints
        dedup_capacity: 3,   // small, so eviction determinism is exercised
        ..StoreConfig::default()
    }
}

/// A delta frame with two fractional-weight edges derived from `i`.
fn frame(i: u64) -> Vec<u8> {
    let e = |a: u64, s: u64, b: u64| {
        CallEdge::new(
            MethodId::new(a as u32),
            CallSiteId::new(s as u32),
            MethodId::new(b as u32),
        )
    };
    DcgCodec::encode_delta(&[
        (e(i % 5, i % 3, (i * 7) % 11), 1.0 + (i as f64) * 0.37),
        (e((i * 3) % 7, 0, i % 4), 0.25 + (i as f64) * 0.11),
    ])
}

/// One scripted operation, so tests can interleave pushes, sequenced
/// pushes, and epoch advances and replay the identical sequence into a
/// reference aggregator.
#[derive(Debug, Clone)]
enum Op {
    Push(Vec<u8>),
    PushSeq {
        client: u64,
        seq: u64,
        frame: Vec<u8>,
    },
    Epoch,
}

fn mixed_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..12u64 {
        match i % 4 {
            0 => ops.push(Op::Push(frame(i))),
            3 => ops.push(Op::Epoch),
            _ => ops.push(Op::PushSeq {
                client: i % 5,
                seq: i / 4 + 1,
                frame: frame(i),
            }),
        }
    }
    ops
}

fn apply_to_store(store: &ProfileStore, op: &Op) -> Result<(), JournalError> {
    let mut scratch = IngestScratch::new();
    match op {
        Op::Push(f) => store.ingest_frame(f, &mut scratch).map(|_| ()),
        Op::PushSeq { client, seq, frame } => store
            .ingest_sequenced(*client, *seq, frame, &mut scratch)
            .map(|outcome| assert_ne!(outcome, SeqIngest::Duplicate, "scripted seqs are unique")),
        Op::Epoch => store.advance_epoch().map(|_| ()),
    }
}

/// Serially applies `ops` to a fresh uninterrupted reference and
/// returns (aggregator, dedup entries the MemJournal-equivalent would
/// hold). The dedup reference uses the same capped table semantics.
fn reference(config: AggregatorConfig, dedup_cap: usize, ops: &[Op]) -> ReferenceState {
    let aggregator = agg(config);
    let mut scratch = IngestScratch::new();
    let mut dedup = cbs_profiled::DedupTable::new(dedup_cap);
    let mut frames = 0u64;
    for op in ops {
        match op {
            Op::Push(f) => {
                aggregator.ingest_frame_bytes(f, &mut scratch).unwrap();
                frames += 1;
            }
            Op::PushSeq { client, seq, frame } => {
                aggregator.ingest_frame_bytes(frame, &mut scratch).unwrap();
                dedup.record(*client, *seq);
                frames += 1;
            }
            Op::Epoch => {
                aggregator.advance_epoch();
            }
        }
    }
    ReferenceState {
        snapshot: aggregator.encoded_snapshot().as_ref().clone(),
        epoch: aggregator.epoch(),
        frames,
        records: aggregator.stats().records,
        dedup_entries: dedup.entries(),
        dedup_next_touch: dedup.next_touch(),
        aggregator,
    }
}

struct ReferenceState {
    snapshot: Vec<u8>,
    epoch: u64,
    frames: u64,
    records: u64,
    dedup_entries: Vec<cbs_profiled::DedupEntry>,
    dedup_next_touch: u64,
    aggregator: Arc<ShardedAggregator>,
}

fn assert_store_matches(store: &ProfileStore, reference: &ReferenceState) {
    assert_eq!(
        store.aggregator().encoded_snapshot().as_ref(),
        &reference.snapshot,
        "encoded snapshot must be byte-identical"
    );
    assert_eq!(store.aggregator().epoch(), reference.epoch, "epoch");
    let stats = store.aggregator().stats();
    assert_eq!(stats.frames, reference.frames, "lifetime frames");
    assert_eq!(stats.records, reference.records, "lifetime records");
    assert_eq!(
        store.dedup_entries(),
        reference.dedup_entries,
        "dedup entries (including touch stamps)"
    );
    assert_eq!(
        store.dedup_next_touch(),
        reference.dedup_next_touch,
        "dedup touch counter"
    );
}

#[test]
fn reopen_without_checkpoint_is_bit_identical() {
    let dir = TestDir::new("reopen-plain");
    let ops = mixed_ops();
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
        for op in &ops {
            apply_to_store(&store, op).unwrap();
        }
    }
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    let reference = reference(decaying(), 3, &ops);
    assert_store_matches(&reopened, &reference);
    let report = reopened.recovery_report();
    assert_eq!(report.checkpoint_epoch, None);
    assert_eq!(report.replayed_frames, reference.frames);
    assert!(!report.truncated_tail);

    // Decay state lines up too: the next epoch advance must keep the
    // recovered and uninterrupted worlds in bitwise lockstep.
    reopened.advance_epoch().unwrap();
    reference.aggregator.advance_epoch();
    assert_eq!(
        reopened.aggregator().encoded_snapshot().as_ref(),
        reference.aggregator.encoded_snapshot().as_ref(),
        "post-recovery epoch advance must stay in lockstep"
    );
}

#[test]
fn reopen_after_checkpoint_replays_only_the_tail() {
    let dir = TestDir::new("reopen-ckpt");
    let ops = mixed_ops();
    let (head, tail) = ops.split_at(8);
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
        for op in head {
            apply_to_store(&store, op).unwrap();
        }
        store.checkpoint_now().unwrap();
        for op in tail {
            apply_to_store(&store, op).unwrap();
        }
    }
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, &ops));
    let report = reopened.recovery_report();
    assert!(report.checkpoint_epoch.is_some());
    let tail_frames = tail.iter().filter(|op| !matches!(op, Op::Epoch)).count() as u64;
    assert_eq!(report.replayed_frames, tail_frames, "only the tail replays");
}

#[test]
fn automatic_checkpoints_fire_and_truncate_the_log() {
    let dir = TestDir::new("auto-ckpt");
    let config = StoreConfig {
        checkpoint_every: 4,
        ..fast_config()
    };
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), config.clone()).unwrap();
        let mut scratch = IngestScratch::new();
        for i in 0..10u64 {
            store.ingest_frame(&frame(i), &mut scratch).unwrap();
        }
    }
    let inspection = crate::inspect(dir.path()).unwrap();
    assert_eq!(inspection.tail_frames(), 2, "only frames 8..10 in the tail");
    let ckpt = inspection.checkpoint.expect("auto checkpoint committed");
    assert_eq!(ckpt.frames, 8, "two checkpoints at every 4th frame");
    // Subsumed segments were deleted.
    assert!(inspection.segments.iter().all(|s| s.seq >= ckpt.wal_seq));
}

#[test]
fn bad_frame_is_rolled_back_and_never_journaled() {
    let dir = TestDir::new("bad-frame");
    let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    let mut scratch = IngestScratch::new();
    store.ingest_frame(&frame(0), &mut scratch).unwrap();
    let err = store.ingest_frame(b"not a CBSP frame", &mut scratch);
    assert!(matches!(err, Err(JournalError::Frame(_))));
    store.ingest_frame(&frame(1), &mut scratch).unwrap();

    // The WAL holds exactly the two good frames, contiguously.
    let segments = list_segments(store.dir()).unwrap();
    let scan = scan_segment(&segments[0].1).unwrap();
    assert!(!scan.corrupt);
    assert_eq!(scan.records.len(), 2);

    // And a duplicate sequenced retransmission is validated, not acked
    // blindly ("bad frame beats duplicate").
    store
        .ingest_sequenced(1, 1, &frame(2), &mut scratch)
        .unwrap();
    assert!(matches!(
        store.ingest_sequenced(1, 1, b"garbage", &mut scratch),
        Err(JournalError::Frame(_))
    ));
    assert_eq!(
        store
            .ingest_sequenced(1, 1, &frame(2), &mut scratch)
            .unwrap(),
        SeqIngest::Duplicate
    );
}

/// Runs the scripted-crash scenario: apply `ops` until the store
/// crashes, then reopen and assert bit-identity with the durable
/// prefix. Returns the recovery report for site-specific assertions.
fn crash_and_recover(site: CrashSite, spec: CrashSpec) -> crate::RecoveryReport {
    let dir = TestDir::new("crash-site");
    let ops = mixed_ops();
    let schedule = FaultSchedule::scripted([]).with_crash(spec).shared();
    let config = StoreConfig {
        faults: Some(schedule.clone()),
        ..fast_config()
    };
    let crashed_at;
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
        let mut failed = None;
        for (i, op) in ops.iter().enumerate() {
            match apply_to_store(&store, op) {
                Ok(()) => {}
                Err(JournalError::Crashed) => {
                    failed = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected error at op {i}: {e}"),
            }
        }
        crashed_at = failed.expect("the scripted crash must fire");
        assert_eq!(schedule.lock().unwrap().counts().crashes, 1);
        // A crashed store refuses everything until reopened.
        assert!(matches!(
            apply_to_store(&store, &ops[crashed_at]),
            Err(JournalError::Crashed)
        ));
        assert!(matches!(store.checkpoint_now(), Err(JournalError::Crashed)));
    }

    // The durable prefix: ops before the crash, plus — for the sites
    // past the WAL append — the crashed operation itself (journaled,
    // never acknowledged, possibly never applied in-process).
    let durable = match site {
        CrashSite::AfterWalAppend | CrashSite::BeforeApply => &ops[..=crashed_at],
        _ => &ops[..crashed_at],
    };
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, durable));
    reopened.recovery_report().clone()
}

#[test]
fn crash_before_wal_append_loses_exactly_the_unjournaled_op() {
    let report = crash_and_recover(
        CrashSite::BeforeWalAppend,
        CrashSpec::at(CrashSite::BeforeWalAppend).after(5),
    );
    assert!(!report.truncated_tail, "nothing torn was written");
}

#[test]
fn crash_after_wal_append_preserves_the_unacked_op() {
    let report = crash_and_recover(
        CrashSite::AfterWalAppend,
        CrashSpec::at(CrashSite::AfterWalAppend).after(5),
    );
    assert!(!report.truncated_tail);
}

#[test]
fn crash_between_append_and_apply_replays_the_journaled_op() {
    // The staged write path opens a new failure window: the record is
    // in the WAL but the crash lands before the in-process apply. The
    // crashed process never saw the op's effect; recovery must.
    let report = crash_and_recover(
        CrashSite::BeforeApply,
        CrashSpec::at(CrashSite::BeforeApply).after(5),
    );
    assert!(!report.truncated_tail);
}

#[test]
fn torn_final_record_is_detected_truncated_and_excluded() {
    for keep in [0usize, 1, 7, 30] {
        let report = crash_and_recover(
            CrashSite::TornWalRecord,
            CrashSpec::at(CrashSite::TornWalRecord)
                .after(4)
                .keeping(keep),
        );
        assert!(report.truncated_tail, "keep={keep}: torn tail must be cut");
        assert!(report.truncated_at.is_some());
    }
}

#[test]
fn mid_checkpoint_crash_falls_back_to_the_wal() {
    let dir = TestDir::new("crash-midckpt");
    let ops = mixed_ops();
    let schedule = FaultSchedule::scripted([])
        .with_crash(CrashSpec::at(CrashSite::MidCheckpoint))
        .shared();
    let config = StoreConfig {
        faults: Some(schedule),
        ..fast_config()
    };
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
        for op in &ops {
            apply_to_store(&store, op).unwrap();
        }
        assert!(matches!(store.checkpoint_now(), Err(JournalError::Crashed)));
    }
    // The temp checkpoint must not have been installed.
    assert!(!dir.path().join("checkpoint.cbsc").exists());
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, &ops));
    assert_eq!(reopened.recovery_report().checkpoint_epoch, None);
    assert!(
        !dir.path().join("checkpoint.cbsc.tmp").exists(),
        "recovery cleans the orphaned temp file"
    );
}

#[test]
fn mid_checkpoint_crash_keeps_the_previous_checkpoint() {
    let dir = TestDir::new("crash-midckpt-prev");
    let ops = mixed_ops();
    let (head, tail) = ops.split_at(6);
    let schedule = FaultSchedule::scripted([])
        .with_crash(CrashSpec::at(CrashSite::MidCheckpoint).after(1))
        .shared();
    let config = StoreConfig {
        faults: Some(schedule),
        ..fast_config()
    };
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
        for op in head {
            apply_to_store(&store, op).unwrap();
        }
        store.checkpoint_now().unwrap(); // first checkpoint commits
        for op in tail {
            apply_to_store(&store, op).unwrap();
        }
        assert!(matches!(store.checkpoint_now(), Err(JournalError::Crashed)));
    }
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, &ops));
    let report = reopened.recovery_report();
    assert!(
        report.checkpoint_epoch.is_some(),
        "the previous checkpoint still serves as the base"
    );
}

#[test]
fn open_requires_a_fresh_aggregator() {
    let dir = TestDir::new("fresh-agg");
    let aggregator = agg(decaying());
    let mut scratch = IngestScratch::new();
    aggregator
        .ingest_frame_bytes(&frame(0), &mut scratch)
        .unwrap();
    let err = ProfileStore::open(dir.path(), aggregator, fast_config()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

// ---------------------------------------------------------------------
// WAL mutilation property tests (satellite: every truncation offset,
// every byte flip).
// ---------------------------------------------------------------------

/// Builds a store directory holding one WAL segment with `n` plain
/// frames and no checkpoint; returns (dir, segment bytes, record
/// boundaries as (start, end) offsets, per-prefix reference snapshots).
#[allow(clippy::type_complexity)]
fn mutilation_fixture(n: u64) -> (TestDir, Vec<u8>, Vec<(u64, u64)>, Vec<Vec<u8>>) {
    let dir = TestDir::new("mutilate-src");
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
        let mut scratch = IngestScratch::new();
        for i in 0..n {
            store.ingest_frame(&frame(i), &mut scratch).unwrap();
        }
    }
    let segments = list_segments(dir.path()).unwrap();
    // Recovery adds a fresh empty segment on every open; the data sits
    // in the first.
    let (_, ref data_path) = segments[0];
    let bytes = fs::read(data_path).unwrap();
    let scan = scan_segment(data_path).unwrap();
    assert_eq!(scan.records.len(), n as usize);
    let bounds: Vec<(u64, u64)> = scan
        .records
        .iter()
        .map(|r| {
            (
                r.offset,
                r.offset + RECORD_OVERHEAD + r.payload.len() as u64,
            )
        })
        .collect();

    let mut prefixes = Vec::new();
    for k in 0..=n {
        let reference = agg(decaying());
        let mut scratch = IngestScratch::new();
        for i in 0..k {
            reference
                .ingest_frame_bytes(&frame(i), &mut scratch)
                .unwrap();
        }
        prefixes.push(reference.encoded_snapshot().as_ref().clone());
    }
    (dir, bytes, bounds, prefixes)
}

/// Opens a directory containing exactly `bytes` as segment 1 and
/// asserts recovery lands on a clean reference prefix; returns the
/// number of frames replayed.
fn recover_mutilated(parent: &Path, name: &str, bytes: &[u8], prefixes: &[Vec<u8>]) -> u64 {
    let dir = parent.join(name);
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join(wal::segment_file_name(1)), bytes).unwrap();
    let store = ProfileStore::open(&dir, agg(decaying()), fast_config())
        .unwrap_or_else(|e| panic!("{name}: recovery must not fail: {e}"));
    let replayed = store.recovery_report().replayed_frames;
    assert!(
        (replayed as usize) < prefixes.len(),
        "{name}: replayed {replayed} frames, more than were ever written"
    );
    assert_eq!(
        store.aggregator().encoded_snapshot().as_ref(),
        &prefixes[replayed as usize],
        "{name}: recovered state must equal the {replayed}-frame prefix"
    );
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
    replayed
}

#[test]
fn truncation_at_every_byte_offset_recovers_the_longest_intact_prefix() {
    let (src, bytes, bounds, prefixes) = mutilation_fixture(6);
    let work = TestDir::new("mutilate-cut");
    for cut in 0..=bytes.len() {
        let expected = bounds
            .iter()
            .take_while(|&&(_, end)| end <= cut as u64)
            .count() as u64;
        let replayed =
            recover_mutilated(work.path(), &format!("cut-{cut}"), &bytes[..cut], &prefixes);
        assert_eq!(
            replayed, expected,
            "cut at {cut}: wrong number of records survived"
        );
    }
    drop(src);
}

#[test]
fn flipping_any_single_byte_recovers_a_consistent_prefix() {
    let (src, bytes, bounds, prefixes) = mutilation_fixture(6);
    let work = TestDir::new("mutilate-flip");
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0xA5;
        // A flip inside record i's framing or payload cuts replay at i;
        // a flip in the header invalidates the whole segment.
        let expected = if (pos as u64) < WAL_HEADER_LEN {
            0
        } else {
            bounds
                .iter()
                .position(|&(start, end)| (start..end).contains(&(pos as u64)))
                .unwrap_or(bounds.len()) as u64
        };
        let replayed = recover_mutilated(work.path(), &format!("flip-{pos}"), &mutated, &prefixes);
        assert_eq!(replayed, expected, "flip at {pos}");
    }
    drop(src);
}

#[test]
fn flipping_each_crc_byte_is_always_detected() {
    let (src, bytes, bounds, prefixes) = mutilation_fixture(6);
    let work = TestDir::new("mutilate-crc");
    for (i, &(start, _)) in bounds.iter().enumerate() {
        for b in 0..4u64 {
            let pos = (start + 4 + b) as usize; // CRC field: 4 bytes after len
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[pos] ^= 1 << bit;
                let replayed = recover_mutilated(
                    work.path(),
                    &format!("crc-{i}-{b}-{bit}"),
                    &mutated,
                    &prefixes,
                );
                assert_eq!(
                    replayed, i as u64,
                    "record {i}: CRC byte {b} bit {bit} flip must cut replay at {i}"
                );
            }
        }
    }
    drop(src);
}

// ---------------------------------------------------------------------
// Staged write path: concurrent bit-identity, group commit, mid-batch
// crashes, and the durable-store defect-sweep regressions.
// ---------------------------------------------------------------------

/// Decodes the scanned WAL contents of `dir` (all segments, in order)
/// back into scripted ops — the authoritative serialization order of a
/// concurrent run.
fn wal_op_order(dir: &Path) -> Vec<Op> {
    let mut ops = Vec::new();
    for (_, path) in list_segments(dir).unwrap() {
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.corrupt, "no torn records expected in {path:?}");
        for record in &scan.records {
            match wal::decode_op(&record.payload).expect("every record decodes") {
                wal::WalOp::Frame(f) => ops.push(Op::Push(f.to_vec())),
                wal::WalOp::SeqFrame { client, seq, frame } => ops.push(Op::PushSeq {
                    client,
                    seq,
                    frame: frame.to_vec(),
                }),
                wal::WalOp::Epoch(_) => ops.push(Op::Epoch),
            }
        }
    }
    ops
}

/// Hammers one store with four pusher threads of disjoint mixed ops and
/// asserts the tentpole invariant: the live store, a serial reference
/// ingesting the WAL order, and a recovered reopen agree byte-for-byte.
fn concurrent_ingest_matches_wal_order(name: &str, config: StoreConfig, acked_means_durable: bool) {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 25;
    let dir = TestDir::new(name);
    let wal_order;
    {
        let store = Arc::new(ProfileStore::open(dir.path(), agg(decaying()), config).unwrap());
        let barrier = Arc::new(std::sync::Barrier::new(THREADS as usize));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut scratch = IngestScratch::new();
                barrier.wait();
                for i in 0..PER_THREAD {
                    let n = t * PER_THREAD + i;
                    match n % 5 {
                        0 => {
                            store.ingest_frame(&frame(n), &mut scratch).unwrap();
                        }
                        4 => {
                            store.advance_epoch().unwrap();
                        }
                        _ => assert_ne!(
                            store
                                .ingest_sequenced(t + 1, i + 1, &frame(n), &mut scratch)
                                .unwrap(),
                            SeqIngest::Duplicate,
                            "scripted (client, seq) pairs are unique"
                        ),
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        if acked_means_durable {
            assert!(
                !store.wal_dirty(),
                "every op was acked; under `Always` that means durable"
            );
        }
        // The WAL's record order is the serialization the store claims
        // it applied; a serial reference ingesting that order must land
        // on the same bytes (f64 accumulation is order-sensitive, so
        // this catches any out-of-order apply).
        wal_order = wal_op_order(dir.path());
        assert_eq!(wal_order.len(), (THREADS * PER_THREAD) as usize);
        assert_store_matches(&store, &reference(decaying(), 3, &wal_order));
    }
    // And recovery replays that same order to the identical state.
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, &wal_order));
}

#[test]
fn concurrent_pushers_are_bit_identical_without_fsync() {
    concurrent_ingest_matches_wal_order("conc-never", fast_config(), false);
}

#[test]
fn concurrent_pushers_are_bit_identical_under_every_n() {
    concurrent_ingest_matches_wal_order(
        "conc-everyn",
        StoreConfig {
            fsync: FsyncPolicy::EveryN(3),
            ..fast_config()
        },
        false,
    );
}

#[test]
fn concurrent_pushers_are_bit_identical_under_group_commit() {
    let before = crate::StoreMetrics::get().wal_group_commits.get();
    concurrent_ingest_matches_wal_order(
        "conc-always",
        StoreConfig {
            fsync: FsyncPolicy::Always,
            ..fast_config()
        },
        true,
    );
    assert!(
        crate::StoreMetrics::get().wal_group_commits.get() > before,
        "durable acks must have gone through the group-commit stage"
    );
}

#[test]
fn concurrent_pushers_are_bit_identical_with_a_batch_fill_window() {
    concurrent_ingest_matches_wal_order(
        "conc-wait",
        StoreConfig {
            fsync: FsyncPolicy::Always,
            group_commit: crate::GroupCommitConfig {
                max_batch: 8,
                max_wait: std::time::Duration::from_micros(200),
            },
            ..fast_config()
        },
        true,
    );
}

#[test]
fn mid_batch_crash_preserves_every_acked_push() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 12;
    let dir = TestDir::new("crash-midbatch");
    let schedule = FaultSchedule::scripted([])
        .with_crash(CrashSpec::at(CrashSite::AfterWalAppend).after(17))
        .shared();
    let config = StoreConfig {
        fsync: FsyncPolicy::Always,
        faults: Some(schedule.clone()),
        ..fast_config()
    };
    let acked = {
        let store = Arc::new(ProfileStore::open(dir.path(), agg(decaying()), config).unwrap());
        let barrier = Arc::new(std::sync::Barrier::new(THREADS as usize));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut scratch = IngestScratch::new();
                let mut acked = Vec::new();
                barrier.wait();
                for i in 0..PER_THREAD {
                    let n = t * PER_THREAD + i;
                    match store.ingest_frame(&frame(n), &mut scratch) {
                        Ok(_) => acked.push(n),
                        Err(JournalError::Crashed) => break,
                        Err(e) => panic!("unexpected error at frame {n}: {e}"),
                    }
                }
                acked
            }));
        }
        let acked: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(schedule.lock().unwrap().counts().crashes, 1);
        acked
    };

    // The crash landed with group-commit acks outstanding: some pushes
    // were acked, the crashed op and racing appends were journaled but
    // never acknowledged. Every ack must be covered by the WAL, and
    // recovery must equal serial ingest of the scanned record order.
    let wal_order = wal_op_order(dir.path());
    assert!(
        acked.len() < (THREADS * PER_THREAD) as usize,
        "the scripted crash must have cut some pushers short"
    );
    assert!(acked.len() <= wal_order.len());
    for n in &acked {
        let bytes = frame(*n);
        assert!(
            wal_order
                .iter()
                .any(|op| matches!(op, Op::Push(f) if *f == bytes)),
            "acked frame {n} must be in the recovered WAL"
        );
    }
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, &wal_order));
}

#[test]
fn duplicate_seq_ack_is_durable_under_group_commit() {
    let dir = TestDir::new("dup-durable");
    let config = StoreConfig {
        fsync: FsyncPolicy::Always,
        ..fast_config()
    };
    let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
    let mut scratch = IngestScratch::new();
    assert_ne!(
        store
            .ingest_sequenced(7, 1, &frame(0), &mut scratch)
            .unwrap(),
        SeqIngest::Duplicate
    );
    // The duplicate ack promises the *original* is durable: the WAL
    // must be clean when it returns.
    assert_eq!(
        store
            .ingest_sequenced(7, 1, &frame(0), &mut scratch)
            .unwrap(),
        SeqIngest::Duplicate
    );
    assert!(!store.wal_dirty());
}

#[test]
fn sync_cadence_resets_at_every_sync_not_just_every_n() {
    let dir = TestDir::new("cadence");
    let config = StoreConfig {
        fsync: FsyncPolicy::EveryN(3),
        ..fast_config()
    };
    let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
    let mut scratch = IngestScratch::new();
    store.ingest_frame(&frame(0), &mut scratch).unwrap();
    store.ingest_frame(&frame(1), &mut scratch).unwrap();
    assert!(store.wal_dirty(), "two appends under every-3 stay unsynced");
    store.checkpoint_now().unwrap();
    assert!(!store.wal_dirty(), "a checkpoint syncs the tail");
    store.ingest_frame(&frame(2), &mut scratch).unwrap();
    store.ingest_frame(&frame(3), &mut scratch).unwrap();
    assert!(store.wal_dirty());
    // The regression: the checkpoint's sync did not reset the cadence
    // counter, so the third append *since that sync* synced one op too
    // early (and the loss window drifted out of phase forever after).
    store.ingest_frame(&frame(4), &mut scratch).unwrap();
    assert!(
        !store.wal_dirty(),
        "the third append since the checkpoint's sync must sync"
    );
    store.ingest_frame(&frame(5), &mut scratch).unwrap();
    store.sync_now().unwrap();
    assert!(!store.wal_dirty());
    store.ingest_frame(&frame(6), &mut scratch).unwrap();
    store.ingest_frame(&frame(7), &mut scratch).unwrap();
    assert!(store.wal_dirty(), "a manual sync also restarts the count");
    store.ingest_frame(&frame(8), &mut scratch).unwrap();
    assert!(!store.wal_dirty());
}

#[test]
fn flush_syncs_a_dirty_tail_and_is_idempotent() {
    let dir = TestDir::new("flush-dirty");
    let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    let mut scratch = IngestScratch::new();
    store.ingest_frame(&frame(0), &mut scratch).unwrap();
    assert!(store.wal_dirty(), "lazy fsync leaves the tail unsynced");
    store.flush().unwrap();
    assert!(!store.wal_dirty());
    store.flush().unwrap(); // clean flush is a no-op
    assert!(!store.wal_dirty());
}

#[test]
fn graceful_server_shutdown_syncs_the_lazy_wal_tail() {
    let dir = TestDir::new("shutdown-sync");
    let aggregator = agg(decaying());
    let store =
        Arc::new(ProfileStore::open(dir.path(), Arc::clone(&aggregator), fast_config()).unwrap());
    let before = crate::StoreMetrics::get().wal_shutdown_syncs.get();
    let server = cbs_profiled::serve_with(
        "127.0.0.1:0",
        aggregator,
        cbs_profiled::ServerConfig {
            journal: Some(Arc::clone(&store) as Arc<dyn ProfileJournal>),
            ..cbs_profiled::ServerConfig::default()
        },
    )
    .unwrap();
    let mut client =
        cbs_profiled::ProfileClient::connect(server.addr(), cbs_profiled::NetConfig::default())
            .unwrap();
    client.push_frame(&frame(0)).unwrap();
    drop(client);
    assert!(
        store.wal_dirty(),
        "the acked push is not yet on stable storage"
    );
    server.shutdown();
    assert!(
        !store.wal_dirty(),
        "graceful shutdown must sync the WAL tail"
    );
    assert!(crate::StoreMetrics::get().wal_shutdown_syncs.get() > before);
}

#[test]
fn poisoned_fault_schedule_is_recovered_not_propagated() {
    let dir = TestDir::new("poisoned-faults");
    let schedule = FaultSchedule::scripted([]).shared();
    let config = StoreConfig {
        faults: Some(Arc::clone(&schedule)),
        ..fast_config()
    };
    let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
    // A holder thread panics with the schedule mutex held — exactly
    // what a scripted crash's unwinding test thread does.
    let holder = Arc::clone(&schedule);
    let panicker = std::thread::spawn(move || {
        let _guard = holder.lock().expect("first locker sees no poison");
        panic!("scripted panic while holding the fault schedule");
    });
    assert!(panicker.join().is_err(), "thread must have panicked");
    assert!(schedule.lock().is_err(), "the schedule mutex is poisoned");
    // Every journaled op probes the schedule at its crash sites; the
    // poisoned lock must be recovered, not escalated into a panic.
    let before = crate::StoreMetrics::get().fault_lock_recovered.get();
    let mut scratch = IngestScratch::new();
    store.ingest_frame(&frame(0), &mut scratch).unwrap();
    store.checkpoint_now().unwrap();
    assert!(crate::StoreMetrics::get().fault_lock_recovered.get() > before);
}

#[test]
fn checkpoint_survives_a_failed_segment_deletion_and_retries() {
    let dir = TestDir::new("gc-nonfatal");
    let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    let mut scratch = IngestScratch::new();
    for i in 0..4u64 {
        store.ingest_frame(&frame(i), &mut scratch).unwrap();
    }
    // Sabotage GC: park the live segment and put a directory at its
    // path. The store's open fd is unaffected; `remove_file` fails.
    let victim = dir.path().join(wal::segment_file_name(1));
    let parked = dir.path().join("segment-1.parked");
    fs::rename(&victim, &parked).unwrap();
    fs::create_dir(&victim).unwrap();

    let before = crate::StoreMetrics::get().checkpoint_gc_errors.get();
    store.checkpoint_now().unwrap(); // the checkpoint itself must commit
    assert!(
        crate::StoreMetrics::get().checkpoint_gc_errors.get() > before,
        "the failed deletion is counted, not fatal"
    );
    assert!(dir.path().join("checkpoint.cbsc").exists());
    assert!(victim.exists(), "the undeletable entry is still there");

    // The store keeps serving, and once the obstruction clears the
    // next checkpoint's GC retries the deletion and wins.
    store.ingest_frame(&frame(4), &mut scratch).unwrap();
    fs::remove_dir(&victim).unwrap();
    fs::rename(&parked, &victim).unwrap();
    store.checkpoint_now().unwrap();
    assert!(!victim.exists(), "the next checkpoint deleted the leftover");
}

#[test]
fn second_opener_is_refused_while_the_store_is_live() {
    let dir = TestDir::new("lock-refusal");
    let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    let err = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    assert!(
        err.to_string().contains("locked by running process"),
        "the refusal must say who holds the lock: {err}"
    );
    drop(store);
    // Releasing the lock makes the directory usable again.
    ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
}
