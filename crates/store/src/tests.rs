//! Crash-recovery equivalence and WAL-mutilation property tests.
//!
//! The invariant under test everywhere: a reopened store's observable
//! state — encoded snapshot bytes, decay epoch, dedup table (entries
//! and touch counter), lifetime counters — is **byte-identical** to an
//! uninterrupted aggregator that ingested exactly the durable prefix of
//! operations, and recovery never panics or half-applies, whatever the
//! on-disk mutilation.

use crate::store::{FsyncPolicy, ProfileStore, StoreConfig};
use crate::test_dir::TestDir;
use crate::wal::{self, list_segments, scan_segment, RECORD_OVERHEAD, WAL_HEADER_LEN};
use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::CallEdge;
use cbs_profiled::{
    AggregatorConfig, CrashSite, CrashSpec, DcgCodec, FaultSchedule, IngestScratch, JournalError,
    ProfileJournal, SeqIngest, ShardedAggregator,
};
use std::fs;
use std::path::Path;
use std::sync::Arc;

fn agg(config: AggregatorConfig) -> Arc<ShardedAggregator> {
    Arc::new(ShardedAggregator::new(config))
}

fn decaying() -> AggregatorConfig {
    AggregatorConfig {
        shards: 4,
        decay_factor: 0.9,
        min_weight: 1e-9,
    }
}

fn fast_config() -> StoreConfig {
    StoreConfig {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0, // only explicit checkpoints
        dedup_capacity: 3,   // small, so eviction determinism is exercised
        ..StoreConfig::default()
    }
}

/// A delta frame with two fractional-weight edges derived from `i`.
fn frame(i: u64) -> Vec<u8> {
    let e = |a: u64, s: u64, b: u64| {
        CallEdge::new(
            MethodId::new(a as u32),
            CallSiteId::new(s as u32),
            MethodId::new(b as u32),
        )
    };
    DcgCodec::encode_delta(&[
        (e(i % 5, i % 3, (i * 7) % 11), 1.0 + (i as f64) * 0.37),
        (e((i * 3) % 7, 0, i % 4), 0.25 + (i as f64) * 0.11),
    ])
}

/// One scripted operation, so tests can interleave pushes, sequenced
/// pushes, and epoch advances and replay the identical sequence into a
/// reference aggregator.
#[derive(Debug, Clone)]
enum Op {
    Push(Vec<u8>),
    PushSeq {
        client: u64,
        seq: u64,
        frame: Vec<u8>,
    },
    Epoch,
}

fn mixed_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..12u64 {
        match i % 4 {
            0 => ops.push(Op::Push(frame(i))),
            3 => ops.push(Op::Epoch),
            _ => ops.push(Op::PushSeq {
                client: i % 5,
                seq: i / 4 + 1,
                frame: frame(i),
            }),
        }
    }
    ops
}

fn apply_to_store(store: &ProfileStore, op: &Op) -> Result<(), JournalError> {
    let mut scratch = IngestScratch::new();
    match op {
        Op::Push(f) => store.ingest_frame(f, &mut scratch).map(|_| ()),
        Op::PushSeq { client, seq, frame } => store
            .ingest_sequenced(*client, *seq, frame, &mut scratch)
            .map(|outcome| assert_ne!(outcome, SeqIngest::Duplicate, "scripted seqs are unique")),
        Op::Epoch => store.advance_epoch().map(|_| ()),
    }
}

/// Serially applies `ops` to a fresh uninterrupted reference and
/// returns (aggregator, dedup entries the MemJournal-equivalent would
/// hold). The dedup reference uses the same capped table semantics.
fn reference(config: AggregatorConfig, dedup_cap: usize, ops: &[Op]) -> ReferenceState {
    let aggregator = agg(config);
    let mut scratch = IngestScratch::new();
    let mut dedup = cbs_profiled::DedupTable::new(dedup_cap);
    let mut frames = 0u64;
    for op in ops {
        match op {
            Op::Push(f) => {
                aggregator.ingest_frame_bytes(f, &mut scratch).unwrap();
                frames += 1;
            }
            Op::PushSeq { client, seq, frame } => {
                aggregator.ingest_frame_bytes(frame, &mut scratch).unwrap();
                dedup.record(*client, *seq);
                frames += 1;
            }
            Op::Epoch => {
                aggregator.advance_epoch();
            }
        }
    }
    ReferenceState {
        snapshot: aggregator.encoded_snapshot().as_ref().clone(),
        epoch: aggregator.epoch(),
        frames,
        records: aggregator.stats().records,
        dedup_entries: dedup.entries(),
        dedup_next_touch: dedup.next_touch(),
        aggregator,
    }
}

struct ReferenceState {
    snapshot: Vec<u8>,
    epoch: u64,
    frames: u64,
    records: u64,
    dedup_entries: Vec<cbs_profiled::DedupEntry>,
    dedup_next_touch: u64,
    aggregator: Arc<ShardedAggregator>,
}

fn assert_store_matches(store: &ProfileStore, reference: &ReferenceState) {
    assert_eq!(
        store.aggregator().encoded_snapshot().as_ref(),
        &reference.snapshot,
        "encoded snapshot must be byte-identical"
    );
    assert_eq!(store.aggregator().epoch(), reference.epoch, "epoch");
    let stats = store.aggregator().stats();
    assert_eq!(stats.frames, reference.frames, "lifetime frames");
    assert_eq!(stats.records, reference.records, "lifetime records");
    assert_eq!(
        store.dedup_entries(),
        reference.dedup_entries,
        "dedup entries (including touch stamps)"
    );
    assert_eq!(
        store.dedup_next_touch(),
        reference.dedup_next_touch,
        "dedup touch counter"
    );
}

#[test]
fn reopen_without_checkpoint_is_bit_identical() {
    let dir = TestDir::new("reopen-plain");
    let ops = mixed_ops();
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
        for op in &ops {
            apply_to_store(&store, op).unwrap();
        }
    }
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    let reference = reference(decaying(), 3, &ops);
    assert_store_matches(&reopened, &reference);
    let report = reopened.recovery_report();
    assert_eq!(report.checkpoint_epoch, None);
    assert_eq!(report.replayed_frames, reference.frames);
    assert!(!report.truncated_tail);

    // Decay state lines up too: the next epoch advance must keep the
    // recovered and uninterrupted worlds in bitwise lockstep.
    reopened.advance_epoch().unwrap();
    reference.aggregator.advance_epoch();
    assert_eq!(
        reopened.aggregator().encoded_snapshot().as_ref(),
        reference.aggregator.encoded_snapshot().as_ref(),
        "post-recovery epoch advance must stay in lockstep"
    );
}

#[test]
fn reopen_after_checkpoint_replays_only_the_tail() {
    let dir = TestDir::new("reopen-ckpt");
    let ops = mixed_ops();
    let (head, tail) = ops.split_at(8);
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
        for op in head {
            apply_to_store(&store, op).unwrap();
        }
        store.checkpoint_now().unwrap();
        for op in tail {
            apply_to_store(&store, op).unwrap();
        }
    }
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, &ops));
    let report = reopened.recovery_report();
    assert!(report.checkpoint_epoch.is_some());
    let tail_frames = tail.iter().filter(|op| !matches!(op, Op::Epoch)).count() as u64;
    assert_eq!(report.replayed_frames, tail_frames, "only the tail replays");
}

#[test]
fn automatic_checkpoints_fire_and_truncate_the_log() {
    let dir = TestDir::new("auto-ckpt");
    let config = StoreConfig {
        checkpoint_every: 4,
        ..fast_config()
    };
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), config.clone()).unwrap();
        let mut scratch = IngestScratch::new();
        for i in 0..10u64 {
            store.ingest_frame(&frame(i), &mut scratch).unwrap();
        }
    }
    let inspection = crate::inspect(dir.path()).unwrap();
    assert_eq!(inspection.tail_frames(), 2, "only frames 8..10 in the tail");
    let ckpt = inspection.checkpoint.expect("auto checkpoint committed");
    assert_eq!(ckpt.frames, 8, "two checkpoints at every 4th frame");
    // Subsumed segments were deleted.
    assert!(inspection.segments.iter().all(|s| s.seq >= ckpt.wal_seq));
}

#[test]
fn bad_frame_is_rolled_back_and_never_journaled() {
    let dir = TestDir::new("bad-frame");
    let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    let mut scratch = IngestScratch::new();
    store.ingest_frame(&frame(0), &mut scratch).unwrap();
    let err = store.ingest_frame(b"not a CBSP frame", &mut scratch);
    assert!(matches!(err, Err(JournalError::Frame(_))));
    store.ingest_frame(&frame(1), &mut scratch).unwrap();

    // The WAL holds exactly the two good frames, contiguously.
    let segments = list_segments(store.dir()).unwrap();
    let scan = scan_segment(&segments[0].1).unwrap();
    assert!(!scan.corrupt);
    assert_eq!(scan.records.len(), 2);

    // And a duplicate sequenced retransmission is validated, not acked
    // blindly ("bad frame beats duplicate").
    store
        .ingest_sequenced(1, 1, &frame(2), &mut scratch)
        .unwrap();
    assert!(matches!(
        store.ingest_sequenced(1, 1, b"garbage", &mut scratch),
        Err(JournalError::Frame(_))
    ));
    assert_eq!(
        store
            .ingest_sequenced(1, 1, &frame(2), &mut scratch)
            .unwrap(),
        SeqIngest::Duplicate
    );
}

/// Runs the scripted-crash scenario: apply `ops` until the store
/// crashes, then reopen and assert bit-identity with the durable
/// prefix. Returns the recovery report for site-specific assertions.
fn crash_and_recover(site: CrashSite, spec: CrashSpec) -> crate::RecoveryReport {
    let dir = TestDir::new("crash-site");
    let ops = mixed_ops();
    let schedule = FaultSchedule::scripted([]).with_crash(spec).shared();
    let config = StoreConfig {
        faults: Some(schedule.clone()),
        ..fast_config()
    };
    let crashed_at;
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
        let mut failed = None;
        for (i, op) in ops.iter().enumerate() {
            match apply_to_store(&store, op) {
                Ok(()) => {}
                Err(JournalError::Crashed) => {
                    failed = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected error at op {i}: {e}"),
            }
        }
        crashed_at = failed.expect("the scripted crash must fire");
        assert_eq!(schedule.lock().unwrap().counts().crashes, 1);
        // A crashed store refuses everything until reopened.
        assert!(matches!(
            apply_to_store(&store, &ops[crashed_at]),
            Err(JournalError::Crashed)
        ));
        assert!(matches!(store.checkpoint_now(), Err(JournalError::Crashed)));
    }

    // The durable prefix: ops before the crash, plus — for the
    // after-append site — the crashed operation itself (journaled and
    // synced, never acknowledged).
    let durable = match site {
        CrashSite::AfterWalAppend => &ops[..=crashed_at],
        _ => &ops[..crashed_at],
    };
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, durable));
    reopened.recovery_report().clone()
}

#[test]
fn crash_before_wal_append_loses_exactly_the_unjournaled_op() {
    let report = crash_and_recover(
        CrashSite::BeforeWalAppend,
        CrashSpec::at(CrashSite::BeforeWalAppend).after(5),
    );
    assert!(!report.truncated_tail, "nothing torn was written");
}

#[test]
fn crash_after_wal_append_preserves_the_unacked_op() {
    let report = crash_and_recover(
        CrashSite::AfterWalAppend,
        CrashSpec::at(CrashSite::AfterWalAppend).after(5),
    );
    assert!(!report.truncated_tail);
}

#[test]
fn torn_final_record_is_detected_truncated_and_excluded() {
    for keep in [0usize, 1, 7, 30] {
        let report = crash_and_recover(
            CrashSite::TornWalRecord,
            CrashSpec::at(CrashSite::TornWalRecord)
                .after(4)
                .keeping(keep),
        );
        assert!(report.truncated_tail, "keep={keep}: torn tail must be cut");
        assert!(report.truncated_at.is_some());
    }
}

#[test]
fn mid_checkpoint_crash_falls_back_to_the_wal() {
    let dir = TestDir::new("crash-midckpt");
    let ops = mixed_ops();
    let schedule = FaultSchedule::scripted([])
        .with_crash(CrashSpec::at(CrashSite::MidCheckpoint))
        .shared();
    let config = StoreConfig {
        faults: Some(schedule),
        ..fast_config()
    };
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
        for op in &ops {
            apply_to_store(&store, op).unwrap();
        }
        assert!(matches!(store.checkpoint_now(), Err(JournalError::Crashed)));
    }
    // The temp checkpoint must not have been installed.
    assert!(!dir.path().join("checkpoint.cbsc").exists());
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, &ops));
    assert_eq!(reopened.recovery_report().checkpoint_epoch, None);
    assert!(
        !dir.path().join("checkpoint.cbsc.tmp").exists(),
        "recovery cleans the orphaned temp file"
    );
}

#[test]
fn mid_checkpoint_crash_keeps_the_previous_checkpoint() {
    let dir = TestDir::new("crash-midckpt-prev");
    let ops = mixed_ops();
    let (head, tail) = ops.split_at(6);
    let schedule = FaultSchedule::scripted([])
        .with_crash(CrashSpec::at(CrashSite::MidCheckpoint).after(1))
        .shared();
    let config = StoreConfig {
        faults: Some(schedule),
        ..fast_config()
    };
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), config).unwrap();
        for op in head {
            apply_to_store(&store, op).unwrap();
        }
        store.checkpoint_now().unwrap(); // first checkpoint commits
        for op in tail {
            apply_to_store(&store, op).unwrap();
        }
        assert!(matches!(store.checkpoint_now(), Err(JournalError::Crashed)));
    }
    let reopened = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
    assert_store_matches(&reopened, &reference(decaying(), 3, &ops));
    let report = reopened.recovery_report();
    assert!(
        report.checkpoint_epoch.is_some(),
        "the previous checkpoint still serves as the base"
    );
}

#[test]
fn open_requires_a_fresh_aggregator() {
    let dir = TestDir::new("fresh-agg");
    let aggregator = agg(decaying());
    let mut scratch = IngestScratch::new();
    aggregator
        .ingest_frame_bytes(&frame(0), &mut scratch)
        .unwrap();
    let err = ProfileStore::open(dir.path(), aggregator, fast_config()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

// ---------------------------------------------------------------------
// WAL mutilation property tests (satellite: every truncation offset,
// every byte flip).
// ---------------------------------------------------------------------

/// Builds a store directory holding one WAL segment with `n` plain
/// frames and no checkpoint; returns (dir, segment bytes, record
/// boundaries as (start, end) offsets, per-prefix reference snapshots).
#[allow(clippy::type_complexity)]
fn mutilation_fixture(n: u64) -> (TestDir, Vec<u8>, Vec<(u64, u64)>, Vec<Vec<u8>>) {
    let dir = TestDir::new("mutilate-src");
    {
        let store = ProfileStore::open(dir.path(), agg(decaying()), fast_config()).unwrap();
        let mut scratch = IngestScratch::new();
        for i in 0..n {
            store.ingest_frame(&frame(i), &mut scratch).unwrap();
        }
    }
    let segments = list_segments(dir.path()).unwrap();
    // Recovery adds a fresh empty segment on every open; the data sits
    // in the first.
    let (_, ref data_path) = segments[0];
    let bytes = fs::read(data_path).unwrap();
    let scan = scan_segment(data_path).unwrap();
    assert_eq!(scan.records.len(), n as usize);
    let bounds: Vec<(u64, u64)> = scan
        .records
        .iter()
        .map(|r| {
            (
                r.offset,
                r.offset + RECORD_OVERHEAD + r.payload.len() as u64,
            )
        })
        .collect();

    let mut prefixes = Vec::new();
    for k in 0..=n {
        let reference = agg(decaying());
        let mut scratch = IngestScratch::new();
        for i in 0..k {
            reference
                .ingest_frame_bytes(&frame(i), &mut scratch)
                .unwrap();
        }
        prefixes.push(reference.encoded_snapshot().as_ref().clone());
    }
    (dir, bytes, bounds, prefixes)
}

/// Opens a directory containing exactly `bytes` as segment 1 and
/// asserts recovery lands on a clean reference prefix; returns the
/// number of frames replayed.
fn recover_mutilated(parent: &Path, name: &str, bytes: &[u8], prefixes: &[Vec<u8>]) -> u64 {
    let dir = parent.join(name);
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join(wal::segment_file_name(1)), bytes).unwrap();
    let store = ProfileStore::open(&dir, agg(decaying()), fast_config())
        .unwrap_or_else(|e| panic!("{name}: recovery must not fail: {e}"));
    let replayed = store.recovery_report().replayed_frames;
    assert!(
        (replayed as usize) < prefixes.len(),
        "{name}: replayed {replayed} frames, more than were ever written"
    );
    assert_eq!(
        store.aggregator().encoded_snapshot().as_ref(),
        &prefixes[replayed as usize],
        "{name}: recovered state must equal the {replayed}-frame prefix"
    );
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
    replayed
}

#[test]
fn truncation_at_every_byte_offset_recovers_the_longest_intact_prefix() {
    let (src, bytes, bounds, prefixes) = mutilation_fixture(6);
    let work = TestDir::new("mutilate-cut");
    for cut in 0..=bytes.len() {
        let expected = bounds
            .iter()
            .take_while(|&&(_, end)| end <= cut as u64)
            .count() as u64;
        let replayed =
            recover_mutilated(work.path(), &format!("cut-{cut}"), &bytes[..cut], &prefixes);
        assert_eq!(
            replayed, expected,
            "cut at {cut}: wrong number of records survived"
        );
    }
    drop(src);
}

#[test]
fn flipping_any_single_byte_recovers_a_consistent_prefix() {
    let (src, bytes, bounds, prefixes) = mutilation_fixture(6);
    let work = TestDir::new("mutilate-flip");
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0xA5;
        // A flip inside record i's framing or payload cuts replay at i;
        // a flip in the header invalidates the whole segment.
        let expected = if (pos as u64) < WAL_HEADER_LEN {
            0
        } else {
            bounds
                .iter()
                .position(|&(start, end)| (start..end).contains(&(pos as u64)))
                .unwrap_or(bounds.len()) as u64
        };
        let replayed = recover_mutilated(work.path(), &format!("flip-{pos}"), &mutated, &prefixes);
        assert_eq!(replayed, expected, "flip at {pos}");
    }
    drop(src);
}

#[test]
fn flipping_each_crc_byte_is_always_detected() {
    let (src, bytes, bounds, prefixes) = mutilation_fixture(6);
    let work = TestDir::new("mutilate-crc");
    for (i, &(start, _)) in bounds.iter().enumerate() {
        for b in 0..4u64 {
            let pos = (start + 4 + b) as usize; // CRC field: 4 bytes after len
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[pos] ^= 1 << bit;
                let replayed = recover_mutilated(
                    work.path(),
                    &format!("crc-{i}-{b}-{bit}"),
                    &mutated,
                    &prefixes,
                );
                assert_eq!(
                    replayed, i as u64,
                    "record {i}: CRC byte {b} bit {bit} flip must cut replay at {i}"
                );
            }
        }
    }
    drop(src);
}
