//! Checkpoints: an atomic snapshot of everything recovery needs that
//! is *not* in the WAL tail.
//!
//! A checkpoint captures, in one critical section with the WAL
//! rotation, the merged graph (as the codec's encoded snapshot — the
//! same bit-exact bytes `OP_PULL` serves), the decay epoch, the
//! aggregator's lifetime frame/record counters, the full dedup table
//! (entries *and* the touch counter, so eviction decisions replay
//! bit-for-bit), and the sequence number of the first WAL segment whose
//! records postdate the capture. Recovery ingests the snapshot, restores
//! the clock and table, then replays only segments `>= wal_seq` — which
//! is what makes a crash between the checkpoint rename and the old
//! segments' deletion harmless (the stale segments are simply skipped
//! and removed).
//!
//! The file (`checkpoint.cbsc`) is written to a temp name, fsynced,
//! atomically renamed into place, and the directory fsynced; a whole-file
//! CRC-32 trailer rejects torn or bit-rotted checkpoints at load
//! (a corrupt checkpoint is an explicit open error — unlike a torn WAL
//! tail it cannot be safely truncated away).

use crate::crc::crc32;
use crate::wal::sync_dir;
use cbs_profiled::DedupEntry;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Checkpoint file magic.
pub const CKPT_MAGIC: [u8; 4] = *b"CBSC";
/// Checkpoint format version.
pub const CKPT_VERSION: u8 = 1;
/// The committed checkpoint's file name.
pub const CKPT_FILE: &str = "checkpoint.cbsc";
/// The in-flight temp name (ignored — and cleaned up — by recovery).
pub const CKPT_TMP_FILE: &str = "checkpoint.cbsc.tmp";

/// A decoded checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Decay epoch at capture.
    pub epoch: u64,
    /// Aggregator lifetime frames at capture.
    pub frames: u64,
    /// Aggregator lifetime records at capture.
    pub records: u64,
    /// The dedup table's touch counter at capture.
    pub next_touch: u64,
    /// First WAL segment whose records postdate this capture.
    pub wal_seq: u64,
    /// The dedup table's entries, sorted by client id.
    pub dedup: Vec<DedupEntry>,
    /// The encoded CBSP snapshot of the merged graph.
    pub snapshot: Vec<u8>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Checkpoint {
    /// Serializes the checkpoint (CRC trailer included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.dedup.len() * 24 + self.snapshot.len());
        out.extend_from_slice(&CKPT_MAGIC);
        out.push(CKPT_VERSION);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.frames.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&self.next_touch.to_le_bytes());
        out.extend_from_slice(&self.wal_seq.to_le_bytes());
        out.extend_from_slice(&(self.dedup.len() as u64).to_le_bytes());
        for e in &self.dedup {
            out.extend_from_slice(&e.client.to_le_bytes());
            out.extend_from_slice(&e.seq.to_le_bytes());
            out.extend_from_slice(&e.touch.to_le_bytes());
        }
        out.extend_from_slice(&(self.snapshot.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.snapshot);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes and CRC-checks a checkpoint.
    ///
    /// # Errors
    ///
    /// `InvalidData` for any framing, version, length, or CRC mismatch.
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        if bytes.len() < 4 + 1 + 8 * 6 + 8 + 4 {
            return Err(bad("checkpoint too short"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(bad("checkpoint CRC mismatch"));
        }
        if body[0..4] != CKPT_MAGIC {
            return Err(bad("bad checkpoint magic"));
        }
        if body[4] != CKPT_VERSION {
            return Err(bad(format!("unsupported checkpoint version {}", body[4])));
        }
        let mut pos = 5usize;
        let u64_at = |p: &mut usize| -> io::Result<u64> {
            let end = *p + 8;
            if end > body.len() {
                return Err(bad("checkpoint truncated"));
            }
            let v = u64::from_le_bytes(body[*p..end].try_into().expect("8 bytes"));
            *p = end;
            Ok(v)
        };
        let epoch = u64_at(&mut pos)?;
        let frames = u64_at(&mut pos)?;
        let records = u64_at(&mut pos)?;
        let next_touch = u64_at(&mut pos)?;
        let wal_seq = u64_at(&mut pos)?;
        let dedup_count = u64_at(&mut pos)?;
        if dedup_count > (body.len() as u64) / 24 {
            return Err(bad("checkpoint dedup count exceeds file size"));
        }
        let mut dedup = Vec::with_capacity(dedup_count as usize);
        for _ in 0..dedup_count {
            let client = u64_at(&mut pos)?;
            let seq = u64_at(&mut pos)?;
            let touch = u64_at(&mut pos)?;
            dedup.push(DedupEntry { client, seq, touch });
        }
        let snapshot_len = u64_at(&mut pos)? as usize;
        if body.len() - pos != snapshot_len {
            return Err(bad("checkpoint snapshot length mismatch"));
        }
        let snapshot = body[pos..].to_vec();
        Ok(Self {
            epoch,
            frames,
            records,
            next_touch,
            wal_seq,
            dedup,
            snapshot,
        })
    }

    /// Loads the committed checkpoint from `dir`, or `None` when the
    /// store has never checkpointed.
    ///
    /// # Errors
    ///
    /// Read failures, and `InvalidData` for a corrupt checkpoint — a
    /// deliberate hard error (see the module docs).
    pub fn load(dir: &Path) -> io::Result<Option<Self>> {
        let path = dir.join(CKPT_FILE);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => f.read_to_end(&mut bytes)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Self::decode(&bytes).map(Some)
    }

    /// Writes the checkpoint to the temp name and fsyncs it — the
    /// prepare half of the atomic install. The store calls this and
    /// [`commit_temp`] separately so the mid-checkpoint crash site can
    /// fire between them.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_temp(&self, dir: &Path) -> io::Result<PathBuf> {
        let tmp = dir.join(CKPT_TMP_FILE);
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&self.encode())?;
        f.sync_all()?;
        Ok(tmp)
    }

    /// Atomically renames a prepared temp checkpoint into place and
    /// fsyncs the directory.
    ///
    /// # Errors
    ///
    /// Propagates rename/sync failures.
    pub fn commit_temp(dir: &Path, tmp: &Path) -> io::Result<()> {
        fs::rename(tmp, dir.join(CKPT_FILE))?;
        sync_dir(dir)
    }

    /// Convenience: prepare and commit in one call.
    ///
    /// # Errors
    ///
    /// As [`write_temp`](Self::write_temp) / [`commit_temp`](Self::commit_temp).
    pub fn store(&self, dir: &Path) -> io::Result<()> {
        let tmp = self.write_temp(dir)?;
        Self::commit_temp(dir, &tmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir::TestDir;

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 9,
            frames: 120,
            records: 4400,
            next_touch: 77,
            wal_seq: 3,
            dedup: vec![
                DedupEntry {
                    client: 1,
                    seq: 10,
                    touch: 70,
                },
                DedupEntry {
                    client: 9,
                    seq: 2,
                    touch: 76,
                },
            ],
            snapshot: b"CBSP-pretend-snapshot".to_vec(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample();
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn store_load_round_trips_atomically() {
        let dir = TestDir::new("ckpt-roundtrip");
        assert!(Checkpoint::load(dir.path()).unwrap().is_none());
        let c = sample();
        c.store(dir.path()).unwrap();
        assert_eq!(Checkpoint::load(dir.path()).unwrap(), Some(c.clone()));
        // No temp residue after a committed install.
        assert!(!dir.path().join(CKPT_TMP_FILE).exists());
        // Re-store overwrites in place.
        let mut c2 = c;
        c2.epoch = 10;
        c2.store(dir.path()).unwrap();
        assert_eq!(Checkpoint::load(dir.path()).unwrap().unwrap().epoch, 10);
    }

    #[test]
    fn every_corrupted_byte_is_rejected() {
        let c = sample();
        let bytes = c.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} went undetected"
            );
        }
    }

    #[test]
    fn corrupt_checkpoint_file_is_a_hard_load_error() {
        let dir = TestDir::new("ckpt-corrupt");
        let c = sample();
        c.store(dir.path()).unwrap();
        let path = dir.path().join(CKPT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(Checkpoint::load(dir.path()).is_err());
    }
}
