//! # cbs-store
//!
//! The durable profile store for `cbs-profiled`: a CRC-framed
//! write-ahead log, periodic checkpoints, and bit-identical crash
//! recovery for the fleet profile server.
//!
//! The server's write path is the [`cbs_profiled::ProfileJournal`]
//! trait; this crate's [`ProfileStore`] is its durable implementation:
//!
//! * [`wal`] — sequence-numbered segment files of length-prefixed,
//!   CRC-32-framed records carrying the raw CBSP wire bytes of every
//!   accepted operation, appended *before* the ack;
//! * [`checkpoint`] — atomic snapshots (graph, epoch, counters, dedup
//!   table) that bound replay time and let the subsumed log prefix be
//!   deleted;
//! * [`store`] — [`ProfileStore::open`] recovery: load the checkpoint,
//!   replay the WAL tail through the very same
//!   `ShardedAggregator::ingest_frame_bytes` path live ingest uses, and
//!   truncate — never half-apply — a torn tail. The recovered server's
//!   encoded snapshot, decay epoch, and dedup table are byte-identical
//!   to an uninterrupted server that ingested exactly the durable
//!   operations;
//! * [`lock`] — the advisory data-directory lockfile that makes a
//!   second concurrent opener fail fast instead of corrupting the WAL;
//! * [`inspect`] — the read-only directory summary behind
//!   `dcgtool store inspect`.
//!
//! Writes flow through a staged path — a short append critical section,
//! a ticket-ordered apply turnstile, and a group-commit stage where
//! concurrent [`FsyncPolicy::Always`] acks share one `sync_all` — so
//! concurrent pushers overlap instead of convoying (see [`store`]).
//!
//! Scripted crash points ([`cbs_profiled::CrashSite`]) let tests kill
//! the store before/after a WAL append, mid-checkpoint, or with a torn
//! final record, then assert the recovery invariant byte-for-byte.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod crc;
pub mod inspect;
pub mod lock;
pub mod metrics;
pub mod store;
pub mod wal;

#[cfg(test)]
mod test_dir;
#[cfg(test)]
mod tests;

pub use checkpoint::Checkpoint;
pub use crc::crc32;
pub use inspect::{inspect, CheckpointInfo, SegmentInfo, StoreInspection};
pub use lock::StoreLock;
pub use metrics::StoreMetrics;
pub use store::{FsyncPolicy, GroupCommitConfig, ProfileStore, RecoveryReport, StoreConfig};
