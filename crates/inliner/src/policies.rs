//! The paper's inlining policies.
//!
//! * [`TrivialOnlyPolicy`] — the JIT-only baseline configuration (§6.2):
//!   only methods smaller than a calling sequence are inlined, so all
//!   other calls remain profileable.
//! * [`OldJikesPolicy`] — the pre-existing Jikes RVM profile-directed
//!   inliner (§5.1): profile data is consulted only to classify an edge as
//!   *hot* (≥1% of total DCG weight); hot edges get a bigger size
//!   threshold, everything else is ignored.
//! * [`NewLinearPolicy`] — the paper's new inliner: the size threshold is
//!   a bounded *linear function* of edge weight (no hot/cold cliff), and
//!   only receivers covering more than 40% of a polymorphic site's
//!   distribution are guard-inlined.
//! * [`J9Policy`] — J9's inliner (§5.2): aggressive static heuristics;
//!   optional dynamic heuristics that *suppress* inlining at cold sites
//!   and raise thresholds at hot sites.

use crate::policy::{DirectContext, InlinePolicy, VirtualContext};
use cbs_bytecode::MethodId;

/// Baseline: inline only trivial methods.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrivialOnlyPolicy;

impl InlinePolicy for TrivialOnlyPolicy {
    fn name(&self) -> String {
        "trivial-only".to_owned()
    }

    fn should_inline_direct(&self, ctx: &DirectContext) -> bool {
        ctx.callee_is_trivial
    }

    fn guarded_targets(&self, _ctx: &VirtualContext) -> Vec<MethodId> {
        Vec::new()
    }
}

/// The old Jikes RVM profile-directed inliner: a sharp hot/cold cliff.
#[derive(Debug, Clone, Copy)]
pub struct OldJikesPolicy {
    /// Edge share (percent of total DCG weight) above which an edge is
    /// "hot".
    pub hot_edge_pct: f64,
    /// Static size threshold for unprofiled/cold sites.
    pub static_size: u32,
    /// Raised size threshold for hot sites.
    pub hot_size: u32,
    /// Minimum receiver fraction for guarded inlining at a hot virtual
    /// site (the old inliner was conservative: near-monomorphic only).
    pub mono_fraction: f64,
}

impl Default for OldJikesPolicy {
    fn default() -> Self {
        Self {
            hot_edge_pct: 1.0,
            static_size: 16,
            hot_size: 90,
            mono_fraction: 0.9,
        }
    }
}

impl InlinePolicy for OldJikesPolicy {
    fn name(&self) -> String {
        "old-jikes".to_owned()
    }

    fn should_inline_direct(&self, ctx: &DirectContext) -> bool {
        if ctx.callee_is_trivial || ctx.callee_size <= self.static_size {
            return true;
        }
        // Profile data for non-hot edges is completely ignored.
        ctx.profiled && ctx.site_weight_pct >= self.hot_edge_pct && ctx.callee_size <= self.hot_size
    }

    fn guarded_targets(&self, ctx: &VirtualContext) -> Vec<MethodId> {
        if !ctx.profiled || ctx.site_weight_pct < self.hot_edge_pct {
            return Vec::new();
        }
        ctx.targets
            .first()
            .filter(|t| t.fraction >= self.mono_fraction && t.callee_size <= self.hot_size)
            .map(|t| vec![t.callee])
            .unwrap_or_default()
    }
}

/// The paper's new inliner: linear weight→threshold function and the 40%
/// distribution rule.
#[derive(Debug, Clone, Copy)]
pub struct NewLinearPolicy {
    /// Threshold at zero weight (also the static threshold for
    /// unprofiled sites).
    pub base_size: u32,
    /// Threshold growth per percent of edge weight.
    pub bytes_per_pct: f64,
    /// Hard cap — "bounded by a maximum allowable size to avoid observed
    /// performance degradations when inlining truly massive methods".
    pub max_size: u32,
    /// Minimum share of a site's receiver distribution for a callee to be
    /// considered for guarded inlining (the 40% rule).
    pub guard_fraction: f64,
    /// Maximum guarded targets per site.
    pub max_guards: usize,
}

impl Default for NewLinearPolicy {
    fn default() -> Self {
        Self {
            base_size: 20,
            bytes_per_pct: 60.0,
            max_size: 90,
            guard_fraction: 0.4,
            max_guards: 2,
        }
    }
}

impl NewLinearPolicy {
    /// The size threshold for a site of the given weight share: the
    /// hotter a call site is, the larger the callee it may inline.
    pub fn threshold(&self, site_weight_pct: f64) -> u32 {
        let t = f64::from(self.base_size) + self.bytes_per_pct * site_weight_pct.max(0.0);
        (t as u32).min(self.max_size)
    }
}

impl InlinePolicy for NewLinearPolicy {
    fn name(&self) -> String {
        "new-linear".to_owned()
    }

    fn should_inline_direct(&self, ctx: &DirectContext) -> bool {
        ctx.callee_is_trivial || ctx.callee_size <= self.threshold(ctx.site_weight_pct)
    }

    fn guarded_targets(&self, ctx: &VirtualContext) -> Vec<MethodId> {
        if !ctx.profiled {
            return Vec::new();
        }
        let threshold = self.threshold(ctx.site_weight_pct);
        ctx.targets
            .iter()
            .filter(|t| t.fraction > self.guard_fraction && t.callee_size <= threshold)
            .take(self.max_guards)
            .map(|t| t.callee)
            .collect()
    }
}

/// J9's inliner: aggressive static heuristics with optional dynamic
/// overrides.
#[derive(Debug, Clone, Copy)]
pub struct J9Policy {
    /// Aggressive static size threshold.
    pub static_size: u32,
    /// Whether dynamic (profile-driven) heuristics are active.
    pub dynamic: bool,
    /// Sites below this weight share are *cold*: the static heuristics
    /// are overridden and inlining is not performed (trivial methods
    /// excepted).
    pub cold_pct: f64,
    /// Sites at or above this weight share are *hot*: thresholds are
    /// raised.
    pub hot_pct: f64,
    /// Multiplier applied to `static_size` at hot sites.
    pub hot_boost: f64,
    /// The 40% rule for guarded inlining (dynamic mode only).
    pub guard_fraction: f64,
    /// Maximum guarded targets per site.
    pub max_guards: usize,
}

impl Default for J9Policy {
    fn default() -> Self {
        Self {
            static_size: 80,
            dynamic: true,
            cold_pct: 0.004,
            hot_pct: 0.25,
            hot_boost: 1.75,
            guard_fraction: 0.4,
            max_guards: 1,
        }
    }
}

impl J9Policy {
    /// The static-heuristics-only variant (the baseline of Figure 5,
    /// right).
    pub fn static_only() -> Self {
        Self {
            dynamic: false,
            ..Self::default()
        }
    }

    fn dynamic_threshold(&self, site_weight_pct: f64) -> Option<u32> {
        if site_weight_pct < self.cold_pct {
            // Cold: the static heuristics are overridden and inlining is
            // not performed (trivial methods are handled before this).
            None
        } else if site_weight_pct >= self.hot_pct {
            Some((f64::from(self.static_size) * self.hot_boost) as u32)
        } else {
            Some(self.static_size)
        }
    }
}

impl InlinePolicy for J9Policy {
    fn name(&self) -> String {
        if self.dynamic {
            "j9-dynamic".to_owned()
        } else {
            "j9-static".to_owned()
        }
    }

    fn should_inline_direct(&self, ctx: &DirectContext) -> bool {
        if ctx.callee_is_trivial {
            return true;
        }
        if !(self.dynamic && ctx.profiled) {
            return ctx.callee_size <= self.static_size;
        }
        match self.dynamic_threshold(ctx.site_weight_pct) {
            Some(threshold) => ctx.callee_size <= threshold,
            None => false, // cold: static heuristics overridden
        }
    }

    fn guarded_targets(&self, ctx: &VirtualContext) -> Vec<MethodId> {
        if !(self.dynamic && ctx.profiled) {
            // Static heuristics alone cannot predict receivers.
            return Vec::new();
        }
        // Guarded inlining duplicates code behind a test; J9 pays that
        // price only where the profile says the dispatch is warm enough.
        if ctx.site_weight_pct < self.hot_pct / 2.0 {
            return Vec::new();
        }
        let Some(threshold) = self.dynamic_threshold(ctx.site_weight_pct) else {
            return Vec::new();
        };
        ctx.targets
            .iter()
            .filter(|t| t.fraction > self.guard_fraction && t.callee_size <= threshold)
            .take(self.max_guards)
            .map(|t| t.callee)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::VirtualTarget;

    fn direct(size: u32, pct: f64, profiled: bool) -> DirectContext {
        DirectContext {
            callee: MethodId::new(1),
            callee_size: size,
            callee_is_trivial: false,
            caller_size: 100,
            site_weight_pct: pct,
            profiled,
        }
    }

    fn virt(targets: &[(u32, f64, u32)], pct: f64, profiled: bool) -> VirtualContext {
        VirtualContext {
            targets: targets
                .iter()
                .map(|&(m, fraction, size)| VirtualTarget {
                    callee: MethodId::new(m),
                    callee_size: size,
                    fraction,
                })
                .collect(),
            site_weight_pct: pct,
            caller_size: 100,
            profiled,
        }
    }

    #[test]
    fn trivial_only_ignores_profiles() {
        let p = TrivialOnlyPolicy;
        assert!(!p.should_inline_direct(&direct(50, 99.0, true)));
        let mut ctx = direct(5, 0.0, false);
        ctx.callee_is_trivial = true;
        assert!(p.should_inline_direct(&ctx));
        assert!(p
            .guarded_targets(&virt(&[(1, 1.0, 5)], 50.0, true))
            .is_empty());
    }

    #[test]
    fn old_jikes_has_a_hot_cliff() {
        let p = OldJikesPolicy::default();
        // An 80-byte callee at a 0.9% site: ignored (below the 1% cliff).
        assert!(!p.should_inline_direct(&direct(80, 0.9, true)));
        // Same callee at 1.0%: inlined.
        assert!(p.should_inline_direct(&direct(80, 1.0, true)));
        // Small methods inline statically regardless.
        assert!(p.should_inline_direct(&direct(10, 0.0, true)));
    }

    #[test]
    fn old_jikes_guards_only_near_monomorphic_hot_sites() {
        let p = OldJikesPolicy::default();
        assert!(
            p.guarded_targets(&virt(&[(1, 0.95, 50), (2, 0.05, 50)], 2.0, true))
                .len()
                == 1
        );
        // 60/40 split: ignored even though hot.
        assert!(p
            .guarded_targets(&virt(&[(1, 0.6, 50), (2, 0.4, 50)], 2.0, true))
            .is_empty());
        // Cold site: ignored.
        assert!(p
            .guarded_targets(&virt(&[(1, 1.0, 50)], 0.5, true))
            .is_empty());
    }

    #[test]
    fn new_linear_threshold_grows_and_caps() {
        let p = NewLinearPolicy::default();
        assert_eq!(p.threshold(0.0), 20);
        assert!(p.threshold(1.0) > p.threshold(0.2));
        assert_eq!(p.threshold(1e9), p.max_size);
    }

    #[test]
    fn new_linear_has_no_cliff() {
        let p = NewLinearPolicy::default();
        // An 85-byte callee at a barely-warm 1.1% site inlines under the
        // (saturating) linear function: min(90, 20 + 60×1.1) = 86 …
        assert!(p.should_inline_direct(&direct(85, 1.1, true)));
        // … but the old inliner would have needed the full 1% hotness for
        // anything above its 16-byte static threshold; at 0.9% the new
        // inliner still uses what profile data it has (20 + 60×0.9 = 74).
        assert!(p.should_inline_direct(&direct(74, 0.9, true)));
        assert!(!p.should_inline_direct(&direct(75, 0.9, true)));
    }

    #[test]
    fn new_linear_applies_40pct_rule() {
        let p = NewLinearPolicy::default();
        let picked = p.guarded_targets(&virt(
            &[(1, 0.55, 20), (2, 0.41, 20), (3, 0.04, 20)],
            5.0,
            true,
        ));
        assert_eq!(picked, vec![MethodId::new(1), MethodId::new(2)]);
        // Exactly 40% is not *more than* 40%.
        let picked = p.guarded_targets(&virt(&[(1, 0.40, 20)], 5.0, true));
        assert!(picked.is_empty());
    }

    #[test]
    fn j9_static_mode_is_aggressive_and_profile_blind() {
        let p = J9Policy::static_only();
        assert!(p.should_inline_direct(&direct(80, 0.0, false)));
        assert!(!p.should_inline_direct(&direct(81, 99.0, true)));
        assert!(p
            .guarded_targets(&virt(&[(1, 1.0, 10)], 50.0, true))
            .is_empty());
    }

    #[test]
    fn j9_dynamic_suppresses_cold_sites() {
        let p = J9Policy::default();
        // Statically inlinable, but the profile says cold: suppressed.
        assert!(!p.should_inline_direct(&direct(50, 0.0, true)));
        // Same size, warm: allowed.
        assert!(p.should_inline_direct(&direct(50, 0.1, true)));
        // Hot: threshold boosted (80 × 1.75 = 140).
        assert!(p.should_inline_direct(&direct(130, 1.0, true)));
        assert!(!p.should_inline_direct(&direct(200, 1.0, true)));
    }

    #[test]
    fn j9_dynamic_without_profile_falls_back_to_static() {
        let p = J9Policy::default();
        assert!(p.should_inline_direct(&direct(80, 0.0, false)));
    }
}
