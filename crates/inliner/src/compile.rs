//! Compile-time cost model.
//!
//! Inlining enlarges compilation units, and downstream optimizations
//! process the enlarged units — the paper's §1 notes this is what makes
//! inlining one of the more expensive optimizations, and §6.3 reports that
//! J9's *dynamic* heuristics (which suppress inlining at cold sites)
//! reduced compilation time by ~9% on average. This model makes that
//! quantity measurable: compilation cost is a fixed per-method overhead
//! plus a superlinear term in the method's bytecode size (downstream
//! passes are worse than linear in unit size).

use cbs_bytecode::{MethodId, Program};

/// Cycles charged per compiled method and per compiled byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileTimeModel {
    /// Fixed cost per compiled method.
    pub per_method: f64,
    /// Cost per bytecode byte.
    pub per_byte: f64,
    /// Superlinearity exponent on method size (downstream optimizations
    /// process the unit as a whole).
    pub size_exponent: f64,
}

impl Default for CompileTimeModel {
    fn default() -> Self {
        Self {
            per_method: 2_000.0,
            per_byte: 40.0,
            size_exponent: 1.15,
        }
    }
}

impl CompileTimeModel {
    /// Cost of compiling one method of `size` bytecode bytes.
    pub fn method_cost(&self, size: u32) -> f64 {
        self.per_method + self.per_byte * f64::from(size).powf(self.size_exponent)
    }

    /// Total cost of compiling every method that `compiled` selects.
    pub fn program_cost<F: Fn(MethodId) -> bool>(&self, program: &Program, compiled: F) -> f64 {
        program
            .methods()
            .iter()
            .filter(|m| compiled(m.id()))
            .map(|m| self.method_cost(m.size_bytes()))
            .sum()
    }

    /// Total cost of compiling the whole program.
    pub fn total_cost(&self, program: &Program) -> f64 {
        self.program_cost(program, |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;

    #[test]
    fn cost_is_superlinear_in_size() {
        let m = CompileTimeModel::default();
        let small_twice = 2.0 * (m.method_cost(100) - m.per_method);
        let big_once = m.method_cost(200) - m.per_method;
        assert!(
            big_once > small_twice,
            "one 200B unit must cost more than two 100B units"
        );
    }

    #[test]
    fn program_cost_filters_methods() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.const_(0).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.call(f).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let m = CompileTimeModel::default();
        let all = m.total_cost(&p);
        let only_main = m.program_cost(&p, |id| id == main);
        assert!(only_main < all);
        assert!(only_main > 0.0);
    }
}
