//! Whole-program inlining: plan, apply, optimize.
//!
//! Each round scans every call instruction in the current program, asks
//! the policy for a decision, enforces the global [`InlineBudget`], and
//! applies the surviving decisions (highest pc first within each caller so
//! earlier indices stay valid). Multiple rounds give bounded transitive
//! inlining: sites spliced in by round *n* are candidates in round *n+1*,
//! and because call-site identities survive splicing, profile lookups keep
//! working on transformed code.

use crate::policy::{DirectContext, InlineBudget, InlinePolicy, VirtualContext, VirtualTarget};
use crate::transform::{apply_decision, InlineDecision, InlineKind};
use cbs_bytecode::{CallSiteId, ClassId, MethodId, Op, Program, VirtualSlot};
use cbs_dcg::DynamicCallGraph;
use cbs_opt::{OptStats, Optimizer};
use std::collections::{HashMap, HashSet};

/// The calling-sequence size under which a method is *trivial* and always
/// inlined, matching the §6.2 baseline configuration.
pub const TRIVIAL_SIZE: u32 = 12;

/// Summary of one whole-program inlining run.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineReport {
    /// Policy that produced the plan.
    pub policy: String,
    /// Direct/devirtualized splices applied.
    pub direct_inlines: usize,
    /// Guarded splices applied (counting one per site, not per guard).
    pub guarded_inlines: usize,
    /// Statically monomorphic virtual calls devirtualized.
    pub devirtualized: usize,
    /// Planning rounds that ran (≤ budget.rounds).
    pub rounds_run: u32,
    /// Total program size before, in bytecode bytes.
    pub size_before: u64,
    /// Total program size after inlining and optimization.
    pub size_after: u64,
    /// Optimizer statistics, when post-optimization ran.
    pub opt_stats: Option<OptStats>,
}

impl InlineReport {
    /// Total inlining actions applied.
    pub fn total_inlines(&self) -> usize {
        self.direct_inlines + self.guarded_inlines
    }

    /// Code growth factor (`size_after / size_before`).
    pub fn growth(&self) -> f64 {
        if self.size_before == 0 {
            1.0
        } else {
            self.size_after as f64 / self.size_before as f64
        }
    }
}

/// All classes whose vtable maps `slot` to `method` — the exact-class
/// guards that devirtualize this target.
pub(crate) fn guard_classes(
    program: &Program,
    slot: VirtualSlot,
    method: MethodId,
) -> Vec<ClassId> {
    program
        .classes()
        .iter()
        .filter(|c| c.resolve(slot) == Some(method))
        .map(|c| c.id())
        .collect()
}

/// Computes one round of inlining decisions against the current program.
///
/// `already_guarded` lists virtual sites that received a guard chain in an
/// earlier round; their slow-path dispatch keeps the original site id and
/// must not be guarded again.
pub fn plan_round(
    program: &Program,
    dcg: Option<&DynamicCallGraph>,
    policy: &dyn InlinePolicy,
    budget: &InlineBudget,
    already_guarded: &HashSet<CallSiteId>,
) -> Vec<InlineDecision> {
    let profiled = dcg.is_some_and(|g| !g.is_empty());
    let total_weight = dcg.map(|g| g.total_weight()).unwrap_or(0.0);
    let site_pct = |site| -> f64 {
        match dcg {
            Some(g) if total_weight > 0.0 => 100.0 * g.site_weight(site) / total_weight,
            _ => 0.0,
        }
    };

    let mut decisions = Vec::new();
    for caller in program.methods() {
        let caller_size = caller.size_bytes();
        // Candidates are gathered first, then admitted greedily hottest-
        // first under the caller-growth budget: the inliner spends its
        // budget according to the profile's own ranking, so a *biased*
        // profile wastes budget on the wrong sites — which is exactly how
        // inaccuracy costs performance in a real system.
        let mut candidates: Vec<(f64, u32, InlineDecision)> = Vec::new();
        for (pc, site, op) in caller.call_instructions() {
            match *op {
                Op::Call { target, .. } => {
                    if target == caller.id() {
                        continue; // direct recursion
                    }
                    let callee = program.method(target);
                    let callee_size = callee.size_bytes();
                    if callee_size > budget.max_inlined_body {
                        continue;
                    }
                    let ctx = DirectContext {
                        callee: target,
                        callee_size,
                        callee_is_trivial: callee.is_trivial(TRIVIAL_SIZE),
                        caller_size,
                        site_weight_pct: site_pct(site),
                        profiled,
                    };
                    if policy.should_inline_direct(&ctx) {
                        candidates.push((
                            site_pct(site),
                            callee_size,
                            InlineDecision {
                                caller: caller.id(),
                                pc,
                                kind: InlineKind::Direct { callee: target },
                            },
                        ));
                    }
                }
                Op::CallVirtual { slot, .. } => {
                    let static_targets = program.virtual_targets(slot);
                    if static_targets.len() == 1 {
                        // Statically monomorphic: devirtualize without a
                        // guard under the direct rules.
                        let target = static_targets[0];
                        if target == caller.id() {
                            continue;
                        }
                        let callee = program.method(target);
                        let callee_size = callee.size_bytes();
                        if callee_size > budget.max_inlined_body {
                            continue;
                        }
                        let ctx = DirectContext {
                            callee: target,
                            callee_size,
                            callee_is_trivial: callee.is_trivial(TRIVIAL_SIZE),
                            caller_size,
                            site_weight_pct: site_pct(site),
                            profiled,
                        };
                        if policy.should_inline_direct(&ctx) {
                            candidates.push((
                                site_pct(site),
                                callee_size,
                                InlineDecision {
                                    caller: caller.id(),
                                    pc,
                                    kind: InlineKind::Devirtualized { callee: target },
                                },
                            ));
                        }
                        continue;
                    }
                    // Polymorphic: consult the observed receiver
                    // distribution. A site that already carries a guard
                    // chain is its own slow path — leave it alone.
                    if already_guarded.contains(&site) {
                        continue;
                    }
                    let Some(g) = dcg else { continue };
                    let dist = g.site_distribution(site);
                    let site_total: f64 = dist.iter().map(|(_, w)| *w).sum();
                    if site_total <= 0.0 {
                        continue;
                    }
                    let ctx = VirtualContext {
                        targets: dist
                            .iter()
                            .map(|(m, w)| VirtualTarget {
                                callee: *m,
                                callee_size: program.method(*m).size_bytes(),
                                fraction: w / site_total,
                            })
                            .collect(),
                        site_weight_pct: site_pct(site),
                        caller_size,
                        profiled,
                    };
                    let chosen = policy.guarded_targets(&ctx);
                    if chosen.is_empty() {
                        continue;
                    }
                    let mut pairs: Vec<(ClassId, MethodId)> = Vec::new();
                    for m in chosen {
                        if m == caller.id() {
                            continue;
                        }
                        let classes = guard_classes(program, slot, m);
                        if classes.is_empty() || pairs.len() + classes.len() > budget.max_guards {
                            continue;
                        }
                        pairs.extend(classes.into_iter().map(|k| (k, m)));
                    }
                    if pairs.is_empty()
                        || pairs
                            .iter()
                            .any(|(_, m)| program.method(*m).size_bytes() > budget.max_inlined_body)
                    {
                        continue;
                    }
                    let added: u32 = pairs
                        .iter()
                        .map(|(_, m)| program.method(*m).size_bytes() + 8)
                        .sum();
                    candidates.push((
                        site_pct(site),
                        added,
                        InlineDecision {
                            caller: caller.id(),
                            pc,
                            kind: InlineKind::Guarded { targets: pairs },
                        },
                    ));
                }
                _ => {}
            }
        }
        // Greedy admission by descending claimed hotness (pc order breaks
        // ties deterministically). (f64 keys: sort_by with partial_cmp.)
        #[allow(clippy::unnecessary_sort_by)]
        candidates.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("weights are finite")
                .then(a.2.pc.cmp(&b.2.pc))
        });
        let mut projected = caller_size;
        let growth_cap = caller_size.saturating_add(budget.max_caller_growth);
        for (_, added, decision) in candidates {
            let new_size = projected + added;
            if new_size <= budget.max_caller_size && new_size <= growth_cap {
                projected = new_size;
                decisions.push(decision);
            }
        }
    }
    decisions
}

/// Runs the full plan/apply/optimize pipeline with a policy.
///
/// When `optimize` is set, the `cbs-opt` pipeline runs once after all
/// rounds, collapsing the argument-marshalling traffic the splices
/// introduced.
pub fn inline_program(
    program: &mut Program,
    dcg: Option<&DynamicCallGraph>,
    policy: &dyn InlinePolicy,
    budget: &InlineBudget,
    optimize: bool,
) -> InlineReport {
    let size_before = program.total_size_bytes();
    let mut report = InlineReport {
        policy: policy.name(),
        direct_inlines: 0,
        guarded_inlines: 0,
        devirtualized: 0,
        rounds_run: 0,
        size_before,
        size_after: size_before,
        opt_stats: None,
    };

    let mut guarded_sites: HashSet<CallSiteId> = HashSet::new();
    for round in 1..=budget.rounds {
        let decisions = plan_round(program, dcg, policy, budget, &guarded_sites);
        if decisions.is_empty() {
            break;
        }
        report.rounds_run = round;
        apply_round(program, decisions, &mut guarded_sites, &mut report);
    }

    if optimize {
        report.opt_stats = Some(Optimizer::new().optimize_program(program));
    }
    report.size_after = program.total_size_bytes();
    report
}

/// Applies one round's worth of decisions, updating `guarded_sites` and
/// the report counters.
///
/// Shared by [`inline_program`] and the fleet-plan pipeline
/// ([`apply_plan`](crate::apply_plan)): guarded sites are recorded
/// before any splice moves them, then decisions group by caller and
/// apply highest pc first so earlier indices stay valid.
pub(crate) fn apply_round(
    program: &mut Program,
    decisions: Vec<InlineDecision>,
    guarded_sites: &mut HashSet<CallSiteId>,
    report: &mut InlineReport,
) {
    for d in &decisions {
        if let InlineKind::Guarded { .. } = d.kind {
            if let Some(op) = program.method(d.caller).code().get(d.pc as usize) {
                if let Some(site) = op.call_site() {
                    guarded_sites.insert(site);
                }
            }
        }
    }
    let mut by_caller: HashMap<MethodId, Vec<InlineDecision>> = HashMap::new();
    for d in decisions {
        by_caller.entry(d.caller).or_default().push(d);
    }
    let mut callers: Vec<MethodId> = by_caller.keys().copied().collect();
    callers.sort_unstable();
    for caller in callers {
        let mut ds = by_caller.remove(&caller).expect("key exists");
        ds.sort_unstable_by_key(|d| std::cmp::Reverse(d.pc));
        for d in ds {
            match apply_decision(program, &d) {
                Ok(()) => match d.kind {
                    InlineKind::Direct { .. } => report.direct_inlines += 1,
                    InlineKind::Devirtualized { .. } => {
                        report.direct_inlines += 1;
                        report.devirtualized += 1;
                    }
                    InlineKind::Guarded { .. } => report.guarded_inlines += 1,
                },
                Err(e) => {
                    // A decision invalidated by an earlier splice in
                    // the same round (should not happen with the
                    // ordering above) — surface loudly in debug.
                    debug_assert!(false, "inline decision failed: {e}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{NewLinearPolicy, TrivialOnlyPolicy};
    use cbs_bytecode::ProgramBuilder;
    use cbs_dcg::CallEdge;
    use cbs_vm::{Value, Vm, VmConfig};

    /// main calls a small helper in a loop; helper calls a trivial getter.
    fn layered_program() -> (Program, MethodId, MethodId, MethodId) {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 1);
        let getter = b
            .function("getter", cls, 1, 0, |c| {
                c.load(0).get_field(0).ret();
            })
            .unwrap();
        let helper = b
            .function("helper", cls, 1, 0, |c| {
                c.load(0).call(getter).const_(1).add().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 3, |c| {
                c.new_object(cls).store(1);
                c.counted_loop(0, 100, |c| {
                    c.load(1).call(helper).store(2);
                });
                c.load(2).ret();
            })
            .unwrap();
        b.set_entry(main);
        (b.build().unwrap(), main, helper, getter)
    }

    fn profile(program: &Program) -> DynamicCallGraph {
        let mut ex = cbs_profiler_stub::Exhaustive::default();
        Vm::new(program, VmConfig::default()).run(&mut ex).unwrap();
        ex.dcg
    }

    /// Local exhaustive profiler to avoid a circular dev-dependency on
    /// cbs-profiler.
    mod cbs_profiler_stub {
        use cbs_dcg::DynamicCallGraph;
        use cbs_vm::{CallEvent, Profiler};

        #[derive(Debug, Default)]
        pub struct Exhaustive {
            pub dcg: DynamicCallGraph,
        }

        impl Profiler for Exhaustive {
            fn on_entry(&mut self, event: &CallEvent<'_>) {
                self.dcg.record_sample(event.edge);
            }
        }
    }

    #[test]
    fn trivial_only_inlines_just_the_getter() {
        let (mut p, main, helper, getter) = layered_program();
        let before = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        let report = inline_program(
            &mut p,
            None,
            &TrivialOnlyPolicy,
            &InlineBudget::default(),
            true,
        );
        assert!(report.direct_inlines >= 1);
        let after = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        assert_eq!(before.return_values, after.return_values);
        // getter calls disappeared; helper calls remain.
        assert_eq!(after.invocations_of(getter), 0);
        assert_eq!(after.invocations_of(helper), 100);
        let _ = main;
    }

    #[test]
    fn profiled_linear_policy_flattens_the_whole_chain() {
        let (mut p, _main, helper, getter) = layered_program();
        let dcg = profile(&p);
        assert!(dcg.num_edges() >= 2);
        let before = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        let report = inline_program(
            &mut p,
            Some(&dcg),
            &NewLinearPolicy::default(),
            &InlineBudget::default(),
            true,
        );
        assert!(report.rounds_run >= 1);
        let after = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        assert_eq!(before.return_values, after.return_values);
        assert_eq!(after.invocations_of(helper), 0, "helper fully inlined");
        assert_eq!(after.invocations_of(getter), 0, "getter fully inlined");
        assert!(
            after.cycles < before.cycles,
            "inlining must reduce simulated time: {} -> {}",
            before.cycles,
            after.cycles
        );
    }

    #[test]
    fn budget_caps_caller_growth() {
        let (mut p, _main, _helper, _getter) = layered_program();
        let dcg = profile(&p);
        let tight = InlineBudget {
            max_caller_size: 1, // nothing fits
            ..InlineBudget::default()
        };
        let report = inline_program(
            &mut p,
            Some(&dcg),
            &NewLinearPolicy::default(),
            &tight,
            false,
        );
        assert_eq!(report.total_inlines(), 0);
        assert_eq!(report.size_before, report.size_after);
    }

    #[test]
    fn devirtualizes_statically_monomorphic_virtual_calls() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 1);
        let only = b
            .function("C.get", cls, 1, 0, |c| {
                c.load(0).get_field(0).ret();
            })
            .unwrap();
        b.set_vtable(cls, cbs_bytecode::VirtualSlot::new(0), only);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.new_object(cls).store(0);
                c.load(0)
                    .call_virtual(cbs_bytecode::VirtualSlot::new(0), 1)
                    .ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut p = b.build().unwrap();
        let report = inline_program(
            &mut p,
            None,
            &TrivialOnlyPolicy,
            &InlineBudget::default(),
            true,
        );
        assert_eq!(report.devirtualized, 1);
        let after = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        assert_eq!(after.calls, 0);
        assert_eq!(after.return_values, vec![Value::Int(0)]);
    }

    #[test]
    fn guarded_inlining_from_profile_distribution() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 1);
        let f_base = b
            .function("Base.f", base, 1, 0, |c| {
                c.load(0).get_field(0).const_(1).add().ret();
            })
            .unwrap();
        b.set_vtable(base, cbs_bytecode::VirtualSlot::new(0), f_base);
        let sub = b.add_subclass("Sub", base, 0);
        let f_sub = b
            .function("Sub.f", sub, 1, 0, |c| {
                c.load(0).get_field(0).const_(2).add().ret();
            })
            .unwrap();
        b.set_vtable(sub, cbs_bytecode::VirtualSlot::new(0), f_sub);
        let main = b
            .function("main", base, 0, 3, |c| {
                c.new_object(base).store(1);
                c.counted_loop(0, 50, |c| {
                    c.load(1)
                        .call_virtual(cbs_bytecode::VirtualSlot::new(0), 1)
                        .store(2);
                });
                c.load(2).ret();
            })
            .unwrap();
        b.set_entry(main);
        let _ = f_sub;
        let mut p = b.build().unwrap();
        let dcg = profile(&p);
        let report = inline_program(
            &mut p,
            Some(&dcg),
            &NewLinearPolicy::default(),
            &InlineBudget::default(),
            true,
        );
        assert_eq!(report.guarded_inlines, 1, "report: {report:?}");
        let after = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        assert_eq!(after.return_values, vec![Value::Int(1)]);
        assert_eq!(after.calls, 0, "guard always hits: dispatch gone");
    }

    #[test]
    fn report_growth_and_edge_profile_survive() {
        let (mut p, _main, _helper, _getter) = layered_program();
        let dcg = profile(&p);
        // Site-keyed weights still resolve after transformation because
        // sites keep their ids — spot-check via a second plan round.
        let report = inline_program(
            &mut p,
            Some(&dcg),
            &NewLinearPolicy::default(),
            &InlineBudget::default(),
            false,
        );
        assert!(report.growth() >= 1.0);
        let edge = CallEdge::new(
            MethodId::new(0),
            cbs_bytecode::CallSiteId::new(0),
            MethodId::new(0),
        );
        let _ = dcg.weight(&edge); // lookups remain valid
    }
}
