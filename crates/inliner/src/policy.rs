//! Inlining policy interface and budgets.

use cbs_bytecode::MethodId;
use std::fmt;

/// Everything a policy may consult about a direct (or statically
/// monomorphic virtual) call site.
#[derive(Debug, Clone, Copy)]
pub struct DirectContext {
    /// The callee under consideration.
    pub callee: MethodId,
    /// Callee body size in bytecode bytes.
    pub callee_size: u32,
    /// Whether the callee is trivial (leaf no larger than a calling
    /// sequence).
    pub callee_is_trivial: bool,
    /// Current caller size in bytecode bytes.
    pub caller_size: u32,
    /// This site's share of total profile weight, in percent. Zero when
    /// unprofiled or the site never appeared in the profile.
    pub site_weight_pct: f64,
    /// Whether a profile was supplied at all (distinguishes "cold in the
    /// profile" from "no profile available").
    pub profiled: bool,
}

/// One candidate target at a polymorphic virtual site.
#[derive(Debug, Clone, Copy)]
pub struct VirtualTarget {
    /// The implementation method.
    pub callee: MethodId,
    /// Callee body size in bytecode bytes.
    pub callee_size: u32,
    /// This target's fraction of the site's observed receiver
    /// distribution, in `[0, 1]`.
    pub fraction: f64,
}

/// Everything a policy may consult about a polymorphic virtual site.
#[derive(Debug, Clone)]
pub struct VirtualContext {
    /// Observed targets, sorted by descending fraction.
    pub targets: Vec<VirtualTarget>,
    /// The site's share of total profile weight, in percent.
    pub site_weight_pct: f64,
    /// Current caller size in bytecode bytes.
    pub caller_size: u32,
    /// Whether a profile was supplied at all.
    pub profiled: bool,
}

/// An inlining policy: the per-site decision logic that distinguishes the
/// paper's inliners.
pub trait InlinePolicy: fmt::Debug {
    /// Policy name for reports.
    fn name(&self) -> String;

    /// Whether to inline a direct (or guard-free devirtualized) callee.
    fn should_inline_direct(&self, ctx: &DirectContext) -> bool;

    /// Which targets of a polymorphic virtual site to guard-inline, in
    /// guard order. Empty means leave the dispatch alone.
    fn guarded_targets(&self, ctx: &VirtualContext) -> Vec<MethodId>;
}

/// Global limits every planner run respects, independent of policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineBudget {
    /// A caller may not grow beyond this size in bytecode bytes.
    pub max_caller_size: u32,
    /// Bytes of inlined code a caller may absorb per planning round.
    /// This is the scarce resource the planner allocates hottest-first:
    /// a biased profile spends it on the wrong sites.
    pub max_caller_growth: u32,
    /// Bodies larger than this are never inlined regardless of policy
    /// (the paper's "maximum allowable size" bound that avoids
    /// degradations from inlining truly massive methods).
    pub max_inlined_body: u32,
    /// Planning rounds (bounds transitive inlining depth).
    pub rounds: u32,
    /// Maximum guard-chain length at one virtual site.
    pub max_guards: usize,
}

impl Default for InlineBudget {
    fn default() -> Self {
        Self {
            max_caller_size: 1600,
            max_caller_growth: 160,
            max_inlined_body: 400,
            rounds: 3,
            max_guards: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_bounded() {
        let b = InlineBudget::default();
        assert!(b.max_inlined_body < b.max_caller_size);
        assert!(b.rounds >= 1);
        assert!(b.max_guards >= 1);
    }
}
