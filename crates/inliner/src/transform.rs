//! The bytecode inlining transform.
//!
//! Splices a callee body into its caller in place of a call instruction.
//! Three shapes are supported:
//!
//! * **Direct** — a `call` instruction is replaced by the callee body;
//! * **Devirtualized** — a `callvirt` whose slot has exactly one static
//!   implementation is replaced by that body with no guard;
//! * **Guarded** — a polymorphic `callvirt` is replaced by a chain of
//!   class-test guards, one per predicted receiver class, each protecting
//!   an inlined body; the final fallthrough re-executes the original
//!   virtual call (preserving its [`CallSiteId`] so profile attribution
//!   survives).
//!
//! Arguments are spilled into fresh caller locals, the body's locals are
//! remapped above them, every `return` becomes a jump to the join point
//! (the returned value stays on the operand stack), and the argument-
//! marshalling traffic is subsequently removed by `cbs-opt`'s passes.

use cbs_bytecode::{verify, CallSiteId, ClassId, MethodId, Op, Program};
use std::error::Error;
use std::fmt;

/// What to do at one call instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineKind {
    /// Inline the statically bound callee of a `call`.
    Direct {
        /// The callee to splice in.
        callee: MethodId,
    },
    /// Inline the single static implementation of a `callvirt` slot,
    /// without a guard.
    Devirtualized {
        /// The unique implementation.
        callee: MethodId,
    },
    /// Guard-inline one or more predicted receivers of a `callvirt`.
    Guarded {
        /// `(exact receiver class, implementation)` pairs, tested in
        /// order.
        targets: Vec<(ClassId, MethodId)>,
    },
}

/// One planned inlining action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineDecision {
    /// Method containing the call instruction.
    pub caller: MethodId,
    /// Instruction index of the call within the caller (valid for the
    /// program state the plan was computed against).
    pub pc: u32,
    /// The action.
    pub kind: InlineKind,
}

/// Why an inlining action was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// The instruction at the decision's pc is not the expected kind of
    /// call.
    NotThatCall {
        /// The decision's caller.
        caller: MethodId,
        /// The decision's pc.
        pc: u32,
    },
    /// Direct self-inlining is not supported.
    Recursive {
        /// The method that would be inlined into itself.
        method: MethodId,
    },
    /// A guarded decision listed no targets.
    EmptyGuardList,
    /// The spliced method failed re-verification (a transform bug;
    /// surfaced as an error for debuggability).
    Verify(String),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::NotThatCall { caller, pc } => {
                write!(f, "{caller}@{pc}: instruction is not the expected call")
            }
            InlineError::Recursive { method } => {
                write!(f, "{method}: cannot inline a method into itself")
            }
            InlineError::EmptyGuardList => write!(f, "guarded inline with no targets"),
            InlineError::Verify(msg) => write!(f, "inlined code failed verification: {msg}"),
        }
    }
}

impl Error for InlineError {}

/// Applies one inlining decision to the program.
///
/// # Errors
///
/// Returns an [`InlineError`] if the decision no longer matches the code
/// (e.g. the plan was computed against a different program state) or would
/// inline a method into itself.
pub fn apply_decision(program: &mut Program, decision: &InlineDecision) -> Result<(), InlineError> {
    let caller_id = decision.caller;
    let pc = decision.pc as usize;
    let caller = program.method(caller_id);
    let op = caller
        .code()
        .get(pc)
        .copied()
        .ok_or(InlineError::NotThatCall {
            caller: caller_id,
            pc: decision.pc,
        })?;

    match &decision.kind {
        InlineKind::Direct { callee } => {
            let Op::Call { target, .. } = op else {
                return Err(InlineError::NotThatCall {
                    caller: caller_id,
                    pc: decision.pc,
                });
            };
            if target != *callee {
                return Err(InlineError::NotThatCall {
                    caller: caller_id,
                    pc: decision.pc,
                });
            }
            splice_unguarded(program, caller_id, pc, *callee)
        }
        InlineKind::Devirtualized { callee } => {
            let Op::CallVirtual { .. } = op else {
                return Err(InlineError::NotThatCall {
                    caller: caller_id,
                    pc: decision.pc,
                });
            };
            splice_unguarded(program, caller_id, pc, *callee)
        }
        InlineKind::Guarded { targets } => {
            let Op::CallVirtual { site, slot, arity } = op else {
                return Err(InlineError::NotThatCall {
                    caller: caller_id,
                    pc: decision.pc,
                });
            };
            splice_guarded(program, caller_id, pc, site, slot, arity, targets)
        }
    }
}

/// Remaps one callee body for splicing: locals shifted by `local_base`,
/// jump targets shifted by `body_start`, `return`s turned into jumps to
/// `join`.
fn remap_body(code: &[Op], local_base: u16, body_start: u32, join: u32) -> Vec<Op> {
    code.iter()
        .map(|op| match *op {
            Op::Load(n) => Op::Load(n + local_base),
            Op::Store(n) => Op::Store(n + local_base),
            Op::Return => Op::Jump(join),
            other => match other.jump_target() {
                Some(t) => other.with_jump_target(t + body_start),
                None => other,
            },
        })
        .collect()
}

/// Rebuilds the caller around a replacement sequence for the instruction
/// at `pc`, shifting jump targets that point past the call.
fn splice_into_caller(
    program: &mut Program,
    caller_id: MethodId,
    pc: usize,
    replacement: Vec<Op>,
) -> Result<(), InlineError> {
    let old = program.method(caller_id).code().to_vec();
    let delta = replacement.len() as u32 - 1;
    let mut new_code = Vec::with_capacity(old.len() + replacement.len());
    for (i, op) in old.iter().enumerate() {
        if i == pc {
            new_code.extend(replacement.iter().copied());
            continue;
        }
        let adjusted = match op.jump_target() {
            Some(t) if t as usize > pc => op.with_jump_target(t + delta),
            _ => *op,
        };
        new_code.push(adjusted);
    }
    program.replace_method(caller_id, new_code);
    verify::verify_method(program, caller_id).map_err(|e| InlineError::Verify(e.to_string()))?;
    Ok(())
}

/// Splices a callee with no guard (direct call or statically monomorphic
/// virtual call).
fn splice_unguarded(
    program: &mut Program,
    caller_id: MethodId,
    pc: usize,
    callee_id: MethodId,
) -> Result<(), InlineError> {
    if caller_id == callee_id {
        return Err(InlineError::Recursive { method: caller_id });
    }
    let local_base = program.method(caller_id).num_locals();
    let callee = program.method(callee_id).clone();
    let arity = callee.num_params();

    let start = pc as u32;
    let mut replacement: Vec<Op> = Vec::with_capacity(usize::from(arity) + callee.len() + 1);
    // Spill arguments: the last argument is on top, so the highest slot is
    // stored first.
    for i in (0..arity).rev() {
        replacement.push(Op::Store(local_base + i));
    }
    let body_start = start + u32::from(arity);
    let join = body_start + callee.len() as u32;
    replacement.extend(remap_body(callee.code(), local_base, body_start, join));

    program
        .method_mut(caller_id)
        .ensure_locals(local_base + callee.num_locals());
    splice_into_caller(program, caller_id, pc, replacement)
}

/// Splices a guard chain for a polymorphic virtual call.
fn splice_guarded(
    program: &mut Program,
    caller_id: MethodId,
    pc: usize,
    site: CallSiteId,
    slot: cbs_bytecode::VirtualSlot,
    arity: u16,
    targets: &[(ClassId, MethodId)],
) -> Result<(), InlineError> {
    if targets.is_empty() {
        return Err(InlineError::EmptyGuardList);
    }
    if targets.iter().any(|(_, m)| *m == caller_id) {
        return Err(InlineError::Recursive { method: caller_id });
    }
    let local_base = program.method(caller_id).num_locals();
    let bodies: Vec<(ClassId, cbs_bytecode::Method)> = targets
        .iter()
        .map(|(k, m)| (*k, program.method(*m).clone()))
        .collect();

    // Layout:
    //   spills (arity ops)
    //   per target: load receiver; guard -> next; body (return -> join)
    //   slow path: reload args; callvirt (original site); fall into join
    let start = pc as u32;
    let spills = u32::from(arity);
    let mut body_lens = Vec::new();
    for (_, m) in &bodies {
        body_lens.push(m.len() as u32);
    }
    // Compute section offsets.
    let mut offsets = Vec::new(); // start of each target's load+guard
    let mut cursor = start + spills;
    for len in &body_lens {
        offsets.push(cursor);
        cursor += 2 + len; // load, guard, body
    }
    let slow_start = cursor;
    let join = slow_start + u32::from(arity) + 1;

    let mut replacement: Vec<Op> =
        Vec::with_capacity((spills + (cursor - start - spills) + u32::from(arity) + 1) as usize);
    for i in (0..arity).rev() {
        replacement.push(Op::Store(local_base + i));
    }
    let mut max_callee_locals = 0u16;
    for (idx, (class, method)) in bodies.iter().enumerate() {
        let not_taken = offsets.get(idx + 1).copied().unwrap_or(slow_start);
        replacement.push(Op::Load(local_base)); // receiver
        replacement.push(Op::GuardClass {
            class: *class,
            not_taken,
        });
        let body_start = offsets[idx] + 2;
        replacement.extend(remap_body(method.code(), local_base, body_start, join));
        max_callee_locals = max_callee_locals.max(method.num_locals());
    }
    // Slow path: restore arguments and perform the original dispatch.
    for i in 0..arity {
        replacement.push(Op::Load(local_base + i));
    }
    replacement.push(Op::CallVirtual { site, slot, arity });

    program
        .method_mut(caller_id)
        .ensure_locals(local_base + max_callee_locals.max(arity));
    splice_into_caller(program, caller_id, pc, replacement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{ProgramBuilder, VirtualSlot};
    use cbs_vm::{Value, Vm, VmConfig};

    fn run(program: &Program) -> Value {
        Vm::new(program, VmConfig::default())
            .run_unprofiled()
            .unwrap()
            .return_values[0]
    }

    /// Build a program, record its result, apply `decide`, and check the
    /// transformed program computes the same result with fewer calls.
    fn check_semantics_preserved(program: &mut Program, decision: &InlineDecision) {
        let before = run(program);
        let calls_before = Vm::new(program, VmConfig::default())
            .run_unprofiled()
            .unwrap()
            .calls;
        apply_decision(program, decision).unwrap();
        let after = run(program);
        let calls_after = Vm::new(program, VmConfig::default())
            .run_unprofiled()
            .unwrap()
            .calls;
        assert_eq!(before, after, "inlining changed program semantics");
        assert!(
            calls_after < calls_before,
            "inlining must remove dynamic calls"
        );
    }

    #[test]
    fn direct_inline_preserves_semantics() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let add3 = b
            .function("add3", cls, 2, 1, |c| {
                c.load(0)
                    .load(1)
                    .add()
                    .store(2)
                    .load(2)
                    .const_(3)
                    .add()
                    .ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.const_(10).const_(20).call(add3).ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut p = b.build().unwrap();
        // The call is at pc 2.
        check_semantics_preserved(
            &mut p,
            &InlineDecision {
                caller: main,
                pc: 2,
                kind: InlineKind::Direct { callee: add3 },
            },
        );
        assert_eq!(run(&p), Value::Int(33));
    }

    #[test]
    fn direct_inline_inside_loop() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let twice = b
            .function("twice", cls, 1, 0, |c| {
                c.load(0).const_(2).mul().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 2, |c| {
                c.counted_loop(0, 10, |c| {
                    c.load(1).const_(1).add().call(twice).store(1);
                    c.load(1).const_(2).div().store(1);
                    c.load(1).const_(1).add().store(1);
                });
                c.load(1).ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut p = b.build().unwrap();
        let (pc, _, _) = p.method(main).call_instructions().next().unwrap();
        check_semantics_preserved(
            &mut p,
            &InlineDecision {
                caller: main,
                pc,
                kind: InlineKind::Direct { callee: twice },
            },
        );
    }

    #[test]
    fn callee_with_control_flow_inlines() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let abs = b
            .function("abs", cls, 1, 0, |c| {
                let neg = c.label();
                c.load(0).const_(0).cmp_lt().jump_if_non_zero(neg);
                c.load(0).ret();
                c.bind(neg).load(0).neg().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(-5).call(abs).const_(7).call(abs).add().ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut p = b.build().unwrap();
        assert_eq!(run(&p), Value::Int(12));
        // Inline both calls, highest pc first.
        let pcs: Vec<u32> = p
            .method(main)
            .call_instructions()
            .map(|(pc, _, _)| pc)
            .collect();
        for pc in pcs.into_iter().rev() {
            apply_decision(
                &mut p,
                &InlineDecision {
                    caller: main,
                    pc,
                    kind: InlineKind::Direct { callee: abs },
                },
            )
            .unwrap();
        }
        assert_eq!(run(&p), Value::Int(12));
        assert_eq!(
            Vm::new(&p, VmConfig::default())
                .run_unprofiled()
                .unwrap()
                .calls,
            0,
            "all calls inlined"
        );
    }

    fn polymorphic_program() -> (Program, MethodId, MethodId, MethodId, ClassId, ClassId) {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 1);
        let f_base = b
            .function("Base.f", base, 1, 0, |c| {
                c.load(0).get_field(0).const_(1).add().ret();
            })
            .unwrap();
        b.set_vtable(base, VirtualSlot::new(0), f_base);
        let sub = b.add_subclass("Sub", base, 0);
        let f_sub = b
            .function("Sub.f", sub, 1, 0, |c| {
                c.load(0).get_field(0).const_(100).add().ret();
            })
            .unwrap();
        b.set_vtable(sub, VirtualSlot::new(0), f_sub);
        let main = b
            .function("main", base, 0, 2, |c| {
                c.new_object(base).store(0);
                c.new_object(sub).store(1);
                c.load(0).call_virtual(VirtualSlot::new(0), 1);
                c.load(1).call_virtual(VirtualSlot::new(0), 1);
                c.add().ret();
            })
            .unwrap();
        b.set_entry(main);
        (b.build().unwrap(), main, f_base, f_sub, base, sub)
    }

    #[test]
    fn guarded_inline_takes_fast_path_on_match() {
        let (mut p, main, f_base, _f_sub, base, _sub) = polymorphic_program();
        assert_eq!(run(&p), Value::Int(101));
        // Guard-inline Base.f at the first virtual call.
        let (pc, _, _) = p
            .method(main)
            .call_instructions()
            .next()
            .expect("virtual call");
        apply_decision(
            &mut p,
            &InlineDecision {
                caller: main,
                pc,
                kind: InlineKind::Guarded {
                    targets: vec![(base, f_base)],
                },
            },
        )
        .unwrap();
        assert_eq!(run(&p), Value::Int(101), "semantics preserved");
        let calls = Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap()
            .calls;
        assert_eq!(calls, 1, "first dispatch devirtualized, second remains");
    }

    #[test]
    fn guarded_inline_falls_back_on_mismatch() {
        let (mut p, main, f_base, _f_sub, base, _sub) = polymorphic_program();
        // Guard the SECOND call (receiver is Sub) with a Base guard: the
        // guard must miss and the slow path must dispatch correctly.
        let (pc, _, _) = p
            .method(main)
            .call_instructions()
            .nth(1)
            .expect("second virtual call");
        apply_decision(
            &mut p,
            &InlineDecision {
                caller: main,
                pc,
                kind: InlineKind::Guarded {
                    targets: vec![(base, f_base)],
                },
            },
        )
        .unwrap();
        assert_eq!(run(&p), Value::Int(101), "slow path preserved semantics");
        let calls = Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap()
            .calls;
        assert_eq!(calls, 2, "guard missed: the dispatch still happens");
    }

    #[test]
    fn guard_chain_covers_both_classes() {
        let (mut p, main, f_base, f_sub, base, sub) = polymorphic_program();
        for idx in [1usize, 0] {
            let (pc, _, _) = p.method(main).call_instructions().nth(idx).unwrap();
            apply_decision(
                &mut p,
                &InlineDecision {
                    caller: main,
                    pc,
                    kind: InlineKind::Guarded {
                        targets: vec![(base, f_base), (sub, f_sub)],
                    },
                },
            )
            .unwrap();
        }
        assert_eq!(run(&p), Value::Int(101));
        let calls = Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap()
            .calls;
        assert_eq!(calls, 0, "both dispatches fully devirtualized");
    }

    #[test]
    fn recursive_inline_rejected() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let rec = b.declare("rec", cls, 1);
        b.define(rec, 0, |c| {
            let done = c.label();
            c.load(0).jump_if_zero(done);
            c.load(0).const_(1).sub().call(rec).ret();
            c.bind(done).const_(0).ret();
        })
        .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(3).call(rec).ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut p = b.build().unwrap();
        let (pc, _, _) = p.method(rec).call_instructions().next().unwrap();
        let err = apply_decision(
            &mut p,
            &InlineDecision {
                caller: rec,
                pc,
                kind: InlineKind::Direct { callee: rec },
            },
        )
        .unwrap_err();
        assert_eq!(err, InlineError::Recursive { method: rec });
    }

    #[test]
    fn mismatched_decision_rejected() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.const_(0).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.call(f).ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut p = b.build().unwrap();
        // pc 1 is the return, not a call.
        let err = apply_decision(
            &mut p,
            &InlineDecision {
                caller: main,
                pc: 1,
                kind: InlineKind::Direct { callee: f },
            },
        )
        .unwrap_err();
        assert!(matches!(err, InlineError::NotThatCall { .. }));
        // Empty guard list is rejected up front.
        let err = apply_decision(
            &mut p,
            &InlineDecision {
                caller: main,
                pc: 0,
                kind: InlineKind::Guarded { targets: vec![] },
            },
        )
        .unwrap_err();
        // pc 0 is a direct call, so the kind mismatch fires first — both
        // are acceptable rejections; assert it failed.
        assert!(matches!(
            err,
            InlineError::NotThatCall { .. } | InlineError::EmptyGuardList
        ));
    }

    #[test]
    fn inner_call_sites_keep_their_identity() {
        // f calls g; inlining f into main must keep g's call-site id so
        // profile data stays attributable.
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let g = b
            .function("g", cls, 0, 0, |c| {
                c.const_(5).ret();
            })
            .unwrap();
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.call(g).const_(1).add().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.call(f).ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut p = b.build().unwrap();
        let (_, g_site, _) = p.method(f).call_instructions().next().unwrap();
        apply_decision(
            &mut p,
            &InlineDecision {
                caller: main,
                pc: 0,
                kind: InlineKind::Direct { callee: f },
            },
        )
        .unwrap();
        let sites: Vec<CallSiteId> = p
            .method(main)
            .call_instructions()
            .map(|(_, s, _)| s)
            .collect();
        assert_eq!(sites, vec![g_site], "g's site id survives the splice");
        assert_eq!(run(&p), Value::Int(6));
    }
}
