//! Fleet inlining plans: policy decisions computed from a *pooled*
//! profile, shipped to VMs that re-apply them locally.
//!
//! The fleet daemon holds the merged dynamic call graph but not the
//! program, so the split of responsibilities is:
//!
//! * [`build_plan`] (server side) runs the receiver-distribution half of
//!   the policy — the paper's 40% guarded-inlining rule — against the
//!   pooled graph and records, per `(caller, site)`, which callees
//!   justified inlining and with what edge weights;
//! * [`apply_plan`] (VM side) replays the plan against the actual
//!   program through the same plan/apply/optimize pipeline as
//!   [`inline_program`](crate::inline_program), re-checking every size
//!   threshold and growth budget that needs method bodies.
//!
//! Plans are deterministic: entries are sorted by `(caller, site)`, all
//! weights come from the merged snapshot, and the builder never consults
//! ambient state. Two builds against the same graph are identical, which
//! is what lets the daemon cache the encoded plan keyed on its snapshot
//! generation counter.

use crate::planner::{apply_round, guard_classes, InlineReport, TRIVIAL_SIZE};
use crate::policy::{DirectContext, InlineBudget, InlinePolicy, VirtualContext, VirtualTarget};
use crate::transform::{InlineDecision, InlineKind};
use cbs_bytecode::{CallSiteId, ClassId, MethodId, Op, Program};
use cbs_dcg::DynamicCallGraph;
use cbs_opt::Optimizer;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// What the fleet policy decided for one call site.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind {
    /// The pooled profile observed exactly one callee at this site.
    Direct {
        /// The only observed callee.
        callee: MethodId,
    },
    /// The 40% rule selected a single dominant receiver out of several.
    Devirtualize {
        /// The dominant callee.
        callee: MethodId,
        /// Pooled edge weight that justified it.
        weight: f64,
    },
    /// The 40% rule selected multiple receivers for a guard chain.
    Guarded {
        /// Chosen callees with the pooled edge weights that justified
        /// them, heaviest first.
        targets: Vec<(MethodId, f64)>,
    },
}

/// One per-site decision in a fleet plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntry {
    /// Method containing the call site (as observed in the profile).
    pub caller: MethodId,
    /// The call site the decision applies to.
    pub site: CallSiteId,
    /// Total pooled weight of the site across all observed callees.
    pub site_weight: f64,
    /// The decision.
    pub kind: PlanKind,
}

/// A versioned, deterministic fleet inlining plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InlinePlan {
    /// Aggregator snapshot generation the plan was built from.
    pub generation: u64,
    /// Total weight of the source graph (denominator for site
    /// percentages on the applying VM).
    pub total_weight: f64,
    /// Per-site decisions, sorted by `(caller, site)`.
    pub entries: Vec<PlanEntry>,
}

impl InlinePlan {
    /// True when the plan carries no decisions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the plan as deterministic human-readable text (the
    /// `dcgtool plan` output format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# cbs-inline-plan v1 generation={} total_weight={} entries={}",
            self.generation,
            self.total_weight,
            self.entries.len()
        );
        for e in &self.entries {
            let _ = write!(out, "{} {} weight={} ", e.caller, e.site, e.site_weight);
            match &e.kind {
                PlanKind::Direct { callee } => {
                    let _ = writeln!(out, "direct {callee}");
                }
                PlanKind::Devirtualize { callee, weight } => {
                    let _ = writeln!(out, "devirtualize {callee} weight={weight}");
                }
                PlanKind::Guarded { targets } => {
                    let _ = write!(out, "guarded");
                    for (m, w) in targets {
                        let _ = write!(out, " {m}:{w}");
                    }
                    let _ = writeln!(out);
                }
            }
        }
        out
    }
}

/// Builds a fleet plan from a pooled call graph.
///
/// Runs the receiver-distribution half of `policy` (the 40% rule) per
/// site. Size thresholds cannot be checked here — the daemon has no
/// program — so target sizes are reported as 0 and the applying VM
/// re-runs the policy with real sizes. Sites whose pooled weight is not
/// positive, and polymorphic sites where the policy selects no target,
/// are omitted.
pub fn build_plan(
    graph: &DynamicCallGraph,
    policy: &dyn InlinePolicy,
    generation: u64,
) -> InlinePlan {
    let total_weight = graph.total_weight();
    // Group edges by (caller, site); BTreeMaps give the deterministic
    // (caller, site) entry order and per-site callee order.
    let mut sites: BTreeMap<(MethodId, CallSiteId), BTreeMap<MethodId, f64>> = BTreeMap::new();
    for (e, w) in graph.iter() {
        if w <= 0.0 {
            continue;
        }
        *sites
            .entry((e.caller, e.site))
            .or_default()
            .entry(e.callee)
            .or_insert(0.0) += w;
    }
    let mut entries = Vec::new();
    for ((caller, site), callees) in sites {
        let site_weight: f64 = callees.values().sum();
        if site_weight <= 0.0 {
            continue;
        }
        let mut dist: Vec<(MethodId, f64)> = callees.into_iter().collect();
        dist.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then(a.0.cmp(&b.0))
        });
        let kind = if dist.len() == 1 {
            PlanKind::Direct { callee: dist[0].0 }
        } else {
            let ctx = VirtualContext {
                targets: dist
                    .iter()
                    .map(|(m, w)| VirtualTarget {
                        callee: *m,
                        callee_size: 0, // no program on the server
                        fraction: w / site_weight,
                    })
                    .collect(),
                site_weight_pct: if total_weight > 0.0 {
                    100.0 * site_weight / total_weight
                } else {
                    0.0
                },
                caller_size: 0,
                profiled: true,
            };
            let chosen = policy.guarded_targets(&ctx);
            let weight_of =
                |m: MethodId| dist.iter().find(|(c, _)| *c == m).map_or(0.0, |(_, w)| *w);
            match chosen.len() {
                0 => continue,
                1 => PlanKind::Devirtualize {
                    callee: chosen[0],
                    weight: weight_of(chosen[0]),
                },
                _ => PlanKind::Guarded {
                    targets: chosen.into_iter().map(|m| (m, weight_of(m))).collect(),
                },
            }
        };
        entries.push(PlanEntry {
            caller,
            site,
            site_weight,
            kind,
        });
    }
    InlinePlan {
        generation,
        total_weight,
        entries,
    }
}

/// Computes one round of inlining decisions from a fleet plan instead of
/// a local call graph.
///
/// Mirrors [`plan_round`](crate::plan_round): plan entries stand in for
/// the profile (site-keyed, as site identities survive splicing), while
/// every size threshold, guard feasibility check and growth budget runs
/// against the actual program.
pub fn plan_round_from_plan(
    program: &Program,
    plan: &InlinePlan,
    policy: &dyn InlinePolicy,
    budget: &InlineBudget,
    already_guarded: &HashSet<CallSiteId>,
) -> Vec<InlineDecision> {
    let profiled = !plan.is_empty();
    // Site-keyed lookup, first entry winning in (caller, site) order —
    // the same site-only semantics plan_round gets from
    // `site_weight`/`site_distribution`, which keeps lookups working on
    // sites spliced into new callers by earlier rounds.
    let mut by_site: HashMap<CallSiteId, &PlanEntry> = HashMap::new();
    for e in &plan.entries {
        by_site.entry(e.site).or_insert(e);
    }
    let site_pct = |site: CallSiteId| -> f64 {
        match by_site.get(&site) {
            Some(e) if plan.total_weight > 0.0 => 100.0 * e.site_weight / plan.total_weight,
            _ => 0.0,
        }
    };

    let mut decisions = Vec::new();
    for caller in program.methods() {
        let caller_size = caller.size_bytes();
        let mut candidates: Vec<(f64, u32, InlineDecision)> = Vec::new();
        for (pc, site, op) in caller.call_instructions() {
            match *op {
                Op::Call { target, .. } => {
                    if target == caller.id() {
                        continue; // direct recursion
                    }
                    let callee = program.method(target);
                    let callee_size = callee.size_bytes();
                    if callee_size > budget.max_inlined_body {
                        continue;
                    }
                    let ctx = DirectContext {
                        callee: target,
                        callee_size,
                        callee_is_trivial: callee.is_trivial(TRIVIAL_SIZE),
                        caller_size,
                        site_weight_pct: site_pct(site),
                        profiled,
                    };
                    if policy.should_inline_direct(&ctx) {
                        candidates.push((
                            site_pct(site),
                            callee_size,
                            InlineDecision {
                                caller: caller.id(),
                                pc,
                                kind: InlineKind::Direct { callee: target },
                            },
                        ));
                    }
                }
                Op::CallVirtual { slot, .. } => {
                    let static_targets = program.virtual_targets(slot);
                    if static_targets.len() == 1 {
                        // Statically monomorphic: devirtualize without a
                        // guard under the direct rules.
                        let target = static_targets[0];
                        if target == caller.id() {
                            continue;
                        }
                        let callee = program.method(target);
                        let callee_size = callee.size_bytes();
                        if callee_size > budget.max_inlined_body {
                            continue;
                        }
                        let ctx = DirectContext {
                            callee: target,
                            callee_size,
                            callee_is_trivial: callee.is_trivial(TRIVIAL_SIZE),
                            caller_size,
                            site_weight_pct: site_pct(site),
                            profiled,
                        };
                        if policy.should_inline_direct(&ctx) {
                            candidates.push((
                                site_pct(site),
                                callee_size,
                                InlineDecision {
                                    caller: caller.id(),
                                    pc,
                                    kind: InlineKind::Devirtualized { callee: target },
                                },
                            ));
                        }
                        continue;
                    }
                    if already_guarded.contains(&site) {
                        continue;
                    }
                    let Some(entry) = by_site.get(&site) else {
                        continue;
                    };
                    // The plan carries only the callees the fleet policy
                    // selected; the observed weights come with them.
                    let targets: Vec<(MethodId, f64)> = match &entry.kind {
                        PlanKind::Direct { callee } => vec![(*callee, entry.site_weight)],
                        PlanKind::Devirtualize { callee, weight } => vec![(*callee, *weight)],
                        PlanKind::Guarded { targets } => targets.clone(),
                    };
                    let site_total: f64 = targets.iter().map(|(_, w)| *w).sum();
                    if site_total <= 0.0 {
                        continue;
                    }
                    let ctx = VirtualContext {
                        targets: targets
                            .iter()
                            .map(|(m, w)| VirtualTarget {
                                callee: *m,
                                callee_size: program.method(*m).size_bytes(),
                                fraction: w / site_total,
                            })
                            .collect(),
                        site_weight_pct: site_pct(site),
                        caller_size,
                        profiled,
                    };
                    let chosen = policy.guarded_targets(&ctx);
                    if chosen.is_empty() {
                        continue;
                    }
                    let mut pairs: Vec<(ClassId, MethodId)> = Vec::new();
                    for m in chosen {
                        if m == caller.id() {
                            continue;
                        }
                        let classes = guard_classes(program, slot, m);
                        if classes.is_empty() || pairs.len() + classes.len() > budget.max_guards {
                            continue;
                        }
                        pairs.extend(classes.into_iter().map(|k| (k, m)));
                    }
                    if pairs.is_empty()
                        || pairs
                            .iter()
                            .any(|(_, m)| program.method(*m).size_bytes() > budget.max_inlined_body)
                    {
                        continue;
                    }
                    let added: u32 = pairs
                        .iter()
                        .map(|(_, m)| program.method(*m).size_bytes() + 8)
                        .sum();
                    candidates.push((
                        site_pct(site),
                        added,
                        InlineDecision {
                            caller: caller.id(),
                            pc,
                            kind: InlineKind::Guarded { targets: pairs },
                        },
                    ));
                }
                _ => {}
            }
        }
        // Greedy admission by descending claimed hotness (pc order breaks
        // ties deterministically). (f64 keys: sort_by with partial_cmp.)
        #[allow(clippy::unnecessary_sort_by)]
        candidates.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("weights are finite")
                .then(a.2.pc.cmp(&b.2.pc))
        });
        let mut projected = caller_size;
        let growth_cap = caller_size.saturating_add(budget.max_caller_growth);
        for (_, added, decision) in candidates {
            let new_size = projected + added;
            if new_size <= budget.max_caller_size && new_size <= growth_cap {
                projected = new_size;
                decisions.push(decision);
            }
        }
    }
    decisions
}

/// Runs the full plan/apply/optimize pipeline driven by a fleet plan.
///
/// The counterpart of [`inline_program`](crate::inline_program) for a
/// VM consuming pooled-profile decisions: the same bounded transitive
/// rounds, growth budgets and post-pass optimizer, with the plan as the
/// profile source.
pub fn apply_plan(
    program: &mut Program,
    plan: &InlinePlan,
    policy: &dyn InlinePolicy,
    budget: &InlineBudget,
    optimize: bool,
) -> InlineReport {
    let size_before = program.total_size_bytes();
    let mut report = InlineReport {
        policy: policy.name(),
        direct_inlines: 0,
        guarded_inlines: 0,
        devirtualized: 0,
        rounds_run: 0,
        size_before,
        size_after: size_before,
        opt_stats: None,
    };

    let mut guarded_sites: HashSet<CallSiteId> = HashSet::new();
    for round in 1..=budget.rounds {
        let decisions = plan_round_from_plan(program, plan, policy, budget, &guarded_sites);
        if decisions.is_empty() {
            break;
        }
        report.rounds_run = round;
        apply_round(program, decisions, &mut guarded_sites, &mut report);
    }

    if optimize {
        report.opt_stats = Some(Optimizer::new().optimize_program(program));
    }
    report.size_after = program.total_size_bytes();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::NewLinearPolicy;
    use cbs_bytecode::{ProgramBuilder, VirtualSlot};
    use cbs_dcg::CallEdge;
    use cbs_vm::{Value, Vm, VmConfig};

    fn edge(caller: u32, site: u32, callee: u32) -> CallEdge {
        CallEdge::new(
            MethodId::new(caller),
            CallSiteId::new(site),
            MethodId::new(callee),
        )
    }

    #[test]
    fn build_plan_classifies_sites_by_observed_arity_and_40pct_rule() {
        let mut g = DynamicCallGraph::new();
        // Site 0: monomorphic.
        g.record(edge(0, 0, 1), 50.0);
        // Site 1: dominant receiver (90%) plus a cold one → devirtualize.
        g.record(edge(0, 1, 2), 90.0);
        g.record(edge(0, 1, 3), 10.0);
        // Site 2: two receivers above 40% → guard chain.
        g.record(edge(1, 2, 4), 55.0);
        g.record(edge(1, 2, 5), 45.0);
        // Site 3: flat distribution, nothing above 40% → omitted.
        g.record(edge(1, 3, 6), 34.0);
        g.record(edge(1, 3, 7), 33.0);
        g.record(edge(1, 3, 8), 33.0);
        let plan = build_plan(&g, &NewLinearPolicy::default(), 7);
        assert_eq!(plan.generation, 7);
        assert_eq!(plan.total_weight, g.total_weight());
        assert_eq!(plan.entries.len(), 3);
        assert_eq!(
            plan.entries[0].kind,
            PlanKind::Direct {
                callee: MethodId::new(1)
            }
        );
        assert_eq!(
            plan.entries[1].kind,
            PlanKind::Devirtualize {
                callee: MethodId::new(2),
                weight: 90.0
            }
        );
        assert_eq!(
            plan.entries[2].kind,
            PlanKind::Guarded {
                targets: vec![(MethodId::new(4), 55.0), (MethodId::new(5), 45.0)]
            }
        );
        // Entries sorted by (caller, site).
        assert!(plan
            .entries
            .windows(2)
            .all(|w| (w[0].caller, w[0].site) < (w[1].caller, w[1].site)));
    }

    #[test]
    fn build_plan_is_deterministic_and_empty_graph_yields_empty_plan() {
        let mut g = DynamicCallGraph::new();
        g.record(edge(2, 9, 3), 5.0);
        g.record(edge(1, 4, 2), 7.0);
        let a = build_plan(&g, &NewLinearPolicy::default(), 1);
        let b = build_plan(&g, &NewLinearPolicy::default(), 1);
        assert_eq!(a, b);
        let empty = build_plan(&DynamicCallGraph::new(), &NewLinearPolicy::default(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.total_weight, 0.0);
    }

    #[test]
    fn render_is_stable_and_mentions_every_entry() {
        let mut g = DynamicCallGraph::new();
        g.record(edge(0, 0, 1), 50.0);
        g.record(edge(0, 1, 2), 90.0);
        g.record(edge(0, 1, 3), 70.0);
        let plan = build_plan(&g, &NewLinearPolicy::default(), 3);
        let text = plan.render();
        assert!(text.starts_with("# cbs-inline-plan v1 generation=3"));
        assert!(text.contains("m0 s0 weight=50 direct m1"));
        assert!(text.contains("guarded m2:90 m3:70"));
        assert_eq!(text, plan.render());
    }

    /// main → helper → getter; a plan built from an exhaustive profile of
    /// the program must flatten the chain exactly like `inline_program`
    /// with the local graph does.
    #[test]
    fn apply_plan_matches_local_inlining_on_a_direct_chain() {
        let build = || {
            let mut b = ProgramBuilder::new();
            let cls = b.add_class("C", 1);
            let getter = b
                .function("getter", cls, 1, 0, |c| {
                    c.load(0).get_field(0).ret();
                })
                .unwrap();
            let helper = b
                .function("helper", cls, 1, 0, |c| {
                    c.load(0).call(getter).const_(1).add().ret();
                })
                .unwrap();
            let main = b
                .function("main", cls, 0, 3, |c| {
                    c.new_object(cls).store(1);
                    c.counted_loop(0, 100, |c| {
                        c.load(1).call(helper).store(2);
                    });
                    c.load(2).ret();
                })
                .unwrap();
            b.set_entry(main);
            b.build().unwrap()
        };
        let program = build();
        let mut ex = Exhaustive::default();
        Vm::new(&program, VmConfig::default()).run(&mut ex).unwrap();

        let mut local = build();
        let local_report = crate::inline_program(
            &mut local,
            Some(&ex.dcg),
            &NewLinearPolicy::default(),
            &InlineBudget::default(),
            true,
        );

        let plan = build_plan(&ex.dcg, &NewLinearPolicy::default(), 1);
        let mut fleet = build();
        let fleet_report = apply_plan(
            &mut fleet,
            &plan,
            &NewLinearPolicy::default(),
            &InlineBudget::default(),
            true,
        );

        assert_eq!(local_report.direct_inlines, fleet_report.direct_inlines);
        assert_eq!(local_report.guarded_inlines, fleet_report.guarded_inlines);
        let a = Vm::new(&local, VmConfig::default())
            .run_unprofiled()
            .unwrap();
        let b = Vm::new(&fleet, VmConfig::default())
            .run_unprofiled()
            .unwrap();
        assert_eq!(a.return_values, b.return_values);
        assert_eq!(a.cycles, b.cycles);
    }

    /// A polymorphic site whose profile is concentrated on one receiver
    /// gets a guard chain from the plan, and the transformed program
    /// still computes the same result.
    #[test]
    fn apply_plan_guards_polymorphic_sites_from_pooled_weights() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 1);
        let f_base = b
            .function("Base.f", base, 1, 0, |c| {
                c.load(0).get_field(0).const_(1).add().ret();
            })
            .unwrap();
        b.set_vtable(base, VirtualSlot::new(0), f_base);
        let sub = b.add_subclass("Sub", base, 0);
        let f_sub = b
            .function("Sub.f", sub, 1, 0, |c| {
                c.load(0).get_field(0).const_(2).add().ret();
            })
            .unwrap();
        b.set_vtable(sub, VirtualSlot::new(0), f_sub);
        let main = b
            .function("main", base, 0, 3, |c| {
                c.new_object(base).store(1);
                c.counted_loop(0, 50, |c| {
                    c.load(1).call_virtual(VirtualSlot::new(0), 1).store(2);
                });
                c.load(2).ret();
            })
            .unwrap();
        b.set_entry(main);
        let _ = f_sub;
        let mut p = b.build().unwrap();
        let mut ex = Exhaustive::default();
        Vm::new(&p, VmConfig::default()).run(&mut ex).unwrap();
        let plan = build_plan(&ex.dcg, &NewLinearPolicy::default(), 2);
        let report = apply_plan(
            &mut p,
            &plan,
            &NewLinearPolicy::default(),
            &InlineBudget::default(),
            true,
        );
        assert_eq!(report.guarded_inlines, 1, "report: {report:?}");
        let after = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        assert_eq!(after.return_values, vec![Value::Int(1)]);
        assert_eq!(after.calls, 0, "guard always hits: dispatch gone");
    }

    /// Local exhaustive profiler to avoid a circular dev-dependency on
    /// cbs-profiler.
    #[derive(Debug, Default)]
    struct Exhaustive {
        dcg: DynamicCallGraph,
    }

    impl cbs_vm::Profiler for Exhaustive {
        fn on_entry(&mut self, event: &cbs_vm::CallEvent<'_>) {
            self.dcg.record_sample(event.edge);
        }
    }
}
