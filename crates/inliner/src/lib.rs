//! # cbs-inliner
//!
//! Profile-directed inlining for the Arnold–Grove CGO'05 reproduction:
//! a real bytecode inlining transform plus the three inliner policies the
//! paper compares.
//!
//! * [`transform`](mod@crate): [`apply_decision`] splices callee bodies
//!   into callers — direct, devirtualized, or behind class-test guard
//!   chains whose fallthrough re-executes the original virtual call with
//!   its original [`CallSiteId`](cbs_bytecode::CallSiteId);
//! * [`InlinePolicy`] implementations: [`TrivialOnlyPolicy`] (the JIT-only
//!   baseline), [`OldJikesPolicy`] (hot/cold cliff at 1%),
//!   [`NewLinearPolicy`] (the paper's linear weight→threshold function and
//!   40% rule), [`J9Policy`] (aggressive static heuristics with dynamic
//!   cold-suppression);
//! * [`inline_program`] — the plan/apply/optimize pipeline, with growth
//!   budgets and bounded transitive rounds;
//! * [`build_plan`] / [`apply_plan`] — fleet plans: the 40% rule runs
//!   server-side against a *pooled* profile and ships per-site decisions
//!   ([`InlinePlan`]) that VMs replay through the same pipeline;
//! * [`CompileTimeModel`] — makes the compile-time effect of inlining
//!   decisions measurable (J9's dynamic heuristics cut compile time ~9%).
//!
//! ## Example
//!
//! ```
//! use cbs_bytecode::ProgramBuilder;
//! use cbs_inliner::{inline_program, InlineBudget, NewLinearPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let cls = b.add_class("C", 0);
//! let inc = b.function("inc", cls, 1, 0, |c| {
//!     c.load(0).const_(1).add().ret();
//! })?;
//! let main = b.function("main", cls, 0, 0, |c| {
//!     c.const_(41).call(inc).ret();
//! })?;
//! b.set_entry(main);
//! let mut program = b.build()?;
//!
//! let report = inline_program(
//!     &mut program,
//!     None, // no profile: static heuristics only
//!     &NewLinearPolicy::default(),
//!     &InlineBudget::default(),
//!     true,
//! );
//! assert_eq!(report.direct_inlines, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod plan;
mod planner;
mod policies;
mod policy;
mod transform;

pub use compile::CompileTimeModel;
pub use plan::{apply_plan, build_plan, plan_round_from_plan, InlinePlan, PlanEntry, PlanKind};
pub use planner::{inline_program, plan_round, InlineReport, TRIVIAL_SIZE};
pub use policies::{J9Policy, NewLinearPolicy, OldJikesPolicy, TrivialOnlyPolicy};
pub use policy::{DirectContext, InlineBudget, InlinePolicy, VirtualContext, VirtualTarget};
pub use transform::{apply_decision, InlineDecision, InlineError, InlineKind};
