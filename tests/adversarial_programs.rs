//! The adversarial programs from §3, exercised against every mechanism.

use cbs_repro::prelude::*;
use cbs_repro::workloads::adversarial;

#[test]
fn io_variant_biases_the_timer() {
    let (program, handles) = adversarial::io_variant(40, 20_000).unwrap();
    let m = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(TimerSampler::new()),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
        ],
    )
    .unwrap();
    let timer = &m.outcomes[0];
    let cbs = &m.outcomes[1];
    let pct = |dcg: &cbs_repro::dcg::DynamicCallGraph, m: cbs_repro::bytecode::MethodId| {
        if dcg.total_weight() == 0.0 {
            0.0
        } else {
            100.0 * dcg.incoming_weight(m) / dcg.total_weight()
        }
    };
    // The tick lands during the long I/O; the first call afterwards is
    // call_1.
    assert!(
        pct(&timer.dcg, handles.call_1) > pct(&timer.dcg, handles.call_2) + 30.0,
        "I/O variant should bias the timer: call_1={} call_2={}",
        pct(&timer.dcg, handles.call_1),
        pct(&timer.dcg, handles.call_2)
    );
    assert!(
        (pct(&cbs.dcg, handles.call_1) - pct(&cbs.dcg, handles.call_2)).abs() < 10.0,
        "CBS should stay balanced"
    );
}

#[test]
fn phase_shift_defeats_burst_profiling() {
    let (program, handles) = adversarial::phase_shift(700, 100_000).unwrap();
    let m = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(CodePatchingProfiler::with_config(
                cbs_repro::profiler::PatchingConfig {
                    warmup_invocations: 500,
                    burst_samples: 100,
                    ..Default::default()
                },
            )),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
        ],
    )
    .unwrap();
    let patching = &m.outcomes[0];
    let cbs = &m.outcomes[1];

    // Truth: caller_b dominates by >100x.
    let truth_b = m
        .perfect
        .iter()
        .filter(|(e, _)| e.caller == handles.caller_b && e.callee == handles.shared)
        .map(|(_, w)| w)
        .sum::<f64>();
    let truth_a = m
        .perfect
        .iter()
        .filter(|(e, _)| e.caller == handles.caller_a && e.callee == handles.shared)
        .map(|(_, w)| w)
        .sum::<f64>();
    assert!(truth_b > truth_a * 50.0);

    // The burst fires during the warm phase and attributes `shared`
    // mostly to caller_a; CBS keeps sampling and gets caller_b right.
    assert!(
        cbs.accuracy > patching.accuracy + 10.0,
        "cbs {} vs patching {}",
        cbs.accuracy,
        patching.accuracy
    );
    let burst_a = patching
        .dcg
        .iter()
        .filter(|(e, _)| e.caller == handles.caller_a)
        .map(|(_, w)| w)
        .sum::<f64>();
    assert!(
        burst_a > 0.0,
        "the burst must have captured the warmup phase"
    );
}

#[test]
fn pc_sampler_builds_context_tree_but_misses_calls() {
    let (program, handles) = adversarial::figure1(150, 30_000).unwrap();
    let mut pc = PcSampler::new();
    Vm::new(&program, VmConfig::default()).run(&mut pc).unwrap();
    assert!(pc.samples_taken() > 0);
    assert!(pc.cct().max_depth() >= 2);
    // M dominates the stack; the short calls are nearly invisible.
    let total = pc.dcg().total_weight();
    let short = pc.dcg().incoming_weight(handles.call_1) + pc.dcg().incoming_weight(handles.call_2);
    assert!(
        short < total * 0.2,
        "stack sampling should miss the short calls: {short}/{total}"
    );
}
