//! §2 invariants across the whole stack: every dynamic call graph any
//! profiler collects must be a subgraph of the complete static call
//! graph, and profiles must survive serialization.

use cbs_repro::dcg::{serialize, StaticCallGraph};
use cbs_repro::prelude::*;

#[test]
fn every_profiler_respects_the_static_call_graph() {
    let program = Benchmark::Mtrt
        .spec(InputSize::Small)
        .scaled(0.1)
        .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap());
    let scg = StaticCallGraph::build(&program);
    assert!(scg.num_edges() > 0);

    let m = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(TimerSampler::new()),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
            Box::new(PcSampler::new()),
            Box::new(CodePatchingProfiler::new()),
        ],
    )
    .unwrap();

    assert!(
        scg.violation(&m.perfect).is_none(),
        "perfect DCG contains an impossible edge: {:?}",
        scg.violation(&m.perfect)
    );
    for o in &m.outcomes {
        assert!(
            scg.violation(&o.dcg).is_none(),
            "{}: sampled an impossible edge {:?}",
            o.name,
            scg.violation(&o.dcg)
        );
    }
    // The exhaustive profile covers far more of the static graph than any
    // sampler.
    let cbs = m.outcome("cbs(stride=3,samples=16)").unwrap();
    assert!(scg.coverage(&m.perfect) >= scg.coverage(&cbs.dcg));
}

#[test]
fn static_containment_survives_inlining() {
    // After the inliner transforms the program, re-collected profiles
    // must respect the *transformed* program's static graph.
    let mut program = Benchmark::Jess
        .spec(InputSize::Small)
        .scaled(0.05)
        .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap());
    let m = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
    )
    .unwrap();
    inline_program(
        &mut program,
        Some(&m.outcomes[0].dcg),
        &NewLinearPolicy::default(),
        &InlineBudget::default(),
        true,
    );
    let scg = StaticCallGraph::build(&program);
    let m2 = measure(&program, VmConfig::default(), vec![]).unwrap();
    assert!(
        scg.violation(&m2.perfect).is_none(),
        "post-inlining profile violates the static graph"
    );
}

#[test]
fn profiles_round_trip_through_text() {
    let program = Benchmark::Db
        .spec(InputSize::Small)
        .scaled(0.05)
        .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap());
    let m = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
    )
    .unwrap();
    let dcg = &m.outcomes[0].dcg;
    let parsed = serialize::from_text(&serialize::to_text(dcg)).unwrap();
    assert_eq!(&parsed, dcg, "profile serialization must be lossless");
    // A deserialized profile drives the inliner identically.
    let mut a = program.clone();
    let mut b = program.clone();
    inline_program(
        &mut a,
        Some(dcg),
        &NewLinearPolicy::default(),
        &InlineBudget::default(),
        false,
    );
    inline_program(
        &mut b,
        Some(&parsed),
        &NewLinearPolicy::default(),
        &InlineBudget::default(),
        false,
    );
    assert_eq!(a, b);
}

trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}
