//! Property tests on the DCG metric layer: the overlap metric's bounds,
//! symmetry, and identity behavior, over randomized weighted graphs
//! (driven by the in-repo `cbs_prng::prop` harness).

use cbs_prng::prop::run_cases;
use cbs_prng::SmallRng;
use cbs_repro::dcg::{overlap, CallEdge, DynamicCallGraph};
use cbs_repro::prelude::*;

const CASES: u64 = 48;

fn arb_dcg(rng: &mut SmallRng, max_edges: usize) -> DynamicCallGraph {
    let n = rng.gen_range(1..=max_edges);
    let mut g = DynamicCallGraph::new();
    for _ in 0..n {
        let caller = rng.gen_range(0u32..20);
        let site = rng.gen_range(0u32..40);
        let callee = rng.gen_range(0u32..20);
        let w = rng.gen_range(1u32..1000);
        g.record(
            CallEdge::new(
                cbs_repro::bytecode::MethodId::new(caller),
                cbs_repro::bytecode::CallSiteId::new(site),
                cbs_repro::bytecode::MethodId::new(callee),
            ),
            f64::from(w),
        );
    }
    g
}

#[test]
fn overlap_is_bounded() {
    run_cases("overlap_is_bounded", CASES, |rng| {
        let a = arb_dcg(rng, 30);
        let b = arb_dcg(rng, 30);
        let o = overlap(&a, &b);
        assert!((0.0..=100.0 + 1e-9).contains(&o), "overlap {o}");
    });
}

#[test]
fn overlap_is_symmetric() {
    run_cases("overlap_is_symmetric", CASES, |rng| {
        let a = arb_dcg(rng, 30);
        let b = arb_dcg(rng, 30);
        assert!((overlap(&a, &b) - overlap(&b, &a)).abs() < 1e-9);
    });
}

#[test]
fn self_overlap_is_100() {
    run_cases("self_overlap_is_100", CASES, |rng| {
        let a = arb_dcg(rng, 30);
        assert!((overlap(&a, &a) - 100.0).abs() < 1e-9);
    });
}

#[test]
fn overlap_is_scale_invariant() {
    run_cases("overlap_is_scale_invariant", CASES, |rng| {
        let a = arb_dcg(rng, 30);
        let k = rng.gen_range(1u32..100);
        let mut scaled = DynamicCallGraph::new();
        for (e, w) in a.iter() {
            scaled.record(*e, w * f64::from(k));
        }
        assert!((overlap(&a, &scaled) - 100.0).abs() < 1e-9);
    });
}

#[test]
fn merge_total_is_sum() {
    run_cases("merge_total_is_sum", CASES, |rng| {
        let a = arb_dcg(rng, 30);
        let b = arb_dcg(rng, 30);
        let mut m = a.clone();
        m.merge(&b);
        assert!((m.total_weight() - (a.total_weight() + b.total_weight())).abs() < 1e-6);
        assert!(m.num_edges() <= a.num_edges() + b.num_edges());
    });
}

#[test]
fn merged_graphs_self_overlap_at_100() {
    // Regression property for the parallel runner's reduction step: the
    // weight_percent denominator stays consistent after merge/merge_all.
    run_cases("merged_graphs_self_overlap_at_100", CASES, |rng| {
        let shards: Vec<DynamicCallGraph> = (0..rng.gen_range(2usize..6))
            .map(|_| arb_dcg(rng, 20))
            .collect();
        let merged = DynamicCallGraph::merge_all(&shards);
        assert!((overlap(&merged, &merged) - 100.0).abs() < 1e-9);
        let reversed = DynamicCallGraph::merge_all(shards.iter().rev());
        assert_eq!(merged, reversed, "integer-weight merges are order-exact");
    });
}

#[test]
fn decay_scales_weights() {
    run_cases("decay_scales_weights", CASES, |rng| {
        let a = arb_dcg(rng, 30);
        let factor = 0.1 + 0.9 * rng.gen_f64();
        let mut d = a.clone();
        d.decay(factor, 0.0);
        assert!((d.total_weight() - a.total_weight() * factor).abs() < 1e-6);
    });
}

#[test]
fn site_distribution_sums_to_site_weight() {
    run_cases("site_distribution_sums_to_site_weight", CASES, |rng| {
        let a = arb_dcg(rng, 30);
        for site in a.sites() {
            let dist_sum: f64 = a.site_distribution(site).iter().map(|(_, w)| w).sum();
            assert!((dist_sum - a.site_weight(site)).abs() < 1e-9);
        }
    });
}

#[test]
fn sampling_more_converges_toward_truth() {
    // Statistical (but deterministic, seeded) check: on a fixed workload,
    // increasing samples-per-tick monotonically-ish improves accuracy.
    let program = Benchmark::Mtrt
        .spec(InputSize::Small)
        .scaled(0.3)
        .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap());
    let m = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 1))),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 8))),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 64))),
        ],
    )
    .unwrap();
    let acc: Vec<f64> = m.outcomes.iter().map(|o| o.accuracy).collect();
    assert!(
        acc[2] > acc[0] + 5.0,
        "64 samples/tick must clearly beat 1: {acc:?}"
    );
    assert!(
        acc[1] >= acc[0] - 2.0,
        "8 should not be worse than 1: {acc:?}"
    );
}

trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}
