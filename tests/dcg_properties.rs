//! Property tests on the DCG metric layer: the overlap metric's bounds,
//! symmetry, and identity behavior, over arbitrary weighted graphs.

use cbs_repro::dcg::{overlap, CallEdge, DynamicCallGraph};
use cbs_repro::prelude::*;
use proptest::prelude::*;

fn arb_dcg(max_edges: usize) -> impl Strategy<Value = DynamicCallGraph> {
    prop::collection::vec(
        ((0u32..20, 0u32..40, 0u32..20), 1u32..1000),
        1..max_edges,
    )
    .prop_map(|entries| {
        let mut g = DynamicCallGraph::new();
        for ((caller, site, callee), w) in entries {
            g.record(
                CallEdge::new(
                    cbs_repro::bytecode::MethodId::new(caller),
                    cbs_repro::bytecode::CallSiteId::new(site),
                    cbs_repro::bytecode::MethodId::new(callee),
                ),
                f64::from(w),
            );
        }
        g
    })
}

proptest! {
    #[test]
    fn overlap_is_bounded(a in arb_dcg(30), b in arb_dcg(30)) {
        let o = overlap(&a, &b);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&o), "overlap {o}");
    }

    #[test]
    fn overlap_is_symmetric(a in arb_dcg(30), b in arb_dcg(30)) {
        prop_assert!((overlap(&a, &b) - overlap(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn self_overlap_is_100(a in arb_dcg(30)) {
        prop_assert!((overlap(&a, &a) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_is_scale_invariant(a in arb_dcg(30), k in 1u32..100) {
        let mut scaled = DynamicCallGraph::new();
        for (e, w) in a.iter() {
            scaled.record(*e, w * f64::from(k));
        }
        prop_assert!((overlap(&a, &scaled) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_total_is_sum(a in arb_dcg(30), b in arb_dcg(30)) {
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!((m.total_weight() - (a.total_weight() + b.total_weight())).abs() < 1e-6);
        prop_assert!(m.num_edges() <= a.num_edges() + b.num_edges());
    }

    #[test]
    fn decay_scales_weights(a in arb_dcg(30), factor in 0.1f64..1.0) {
        let mut d = a.clone();
        d.decay(factor, 0.0);
        prop_assert!((d.total_weight() - a.total_weight() * factor).abs() < 1e-6);
    }

    #[test]
    fn site_distribution_sums_to_site_weight(a in arb_dcg(30)) {
        for site in a.sites() {
            let dist_sum: f64 = a.site_distribution(site).iter().map(|(_, w)| w).sum();
            prop_assert!((dist_sum - a.site_weight(site)).abs() < 1e-9);
        }
    }
}

#[test]
fn sampling_more_converges_toward_truth() {
    // Statistical (but deterministic, seeded) check: on a fixed workload,
    // increasing samples-per-tick monotonically-ish improves accuracy.
    let program = Benchmark::Mtrt
        .spec(InputSize::Small)
        .scaled(0.3)
        .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap());
    let m = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 1))),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 8))),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 64))),
        ],
    )
    .unwrap();
    let acc: Vec<f64> = m.outcomes.iter().map(|o| o.accuracy).collect();
    assert!(
        acc[2] > acc[0] + 5.0,
        "64 samples/tick must clearly beat 1: {acc:?}"
    );
    assert!(acc[1] >= acc[0] - 2.0, "8 should not be worse than 1: {acc:?}");
}

trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}
