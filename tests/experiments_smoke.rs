//! End-to-end smoke tests of every experiment artifact at reduced scale:
//! each must run, render, and show the paper's qualitative trend.

use cbs_repro::experiments::{
    exhaustive_overhead, figure1_demo, figure5, inliner_ablation, patching_vs_cbs, table1, table2,
    table3, Table2Options,
};
use cbs_repro::prelude::*;

#[test]
fn table1_renders_full_suite() {
    let t = table1(0.02).unwrap();
    assert_eq!(t.rows.len(), 26);
    let text = t.render();
    for b in Benchmark::all() {
        assert!(text.contains(b.name()), "{} missing", b);
    }
}

#[test]
fn table2_grid_trends() {
    let t = table2(&Table2Options::quick(VmFlavor::Jikes, 0.1)).unwrap();
    let base = t.cell(1, 1).unwrap();
    let more_samples = t.cell(1, 256).unwrap();
    let wider_stride = t.cell(15, 1).unwrap();
    // Increasing either parameter improves accuracy (paper: "As the value
    // of either parameter increases, the accuracy improves").
    assert!(more_samples.accuracy > base.accuracy + 5.0);
    assert!(wider_stride.accuracy >= base.accuracy - 2.0);
    // Overhead is driven by samples per tick.
    assert!(more_samples.overhead_pct > base.overhead_pct);
    assert!(base.overhead_pct < 0.1, "base must be ~free");
}

#[test]
fn table3_cbs_dominates_base() {
    let t = table3(
        0.2,
        Some(&[Benchmark::Jess, Benchmark::Mtrt, Benchmark::Javac]),
    )
    .unwrap();
    for r in &t.rows {
        assert!(
            r.jikes_cbs.1 > r.jikes_base.1,
            "{}-{}: cbs {} vs base {}",
            r.benchmark,
            r.size.label(),
            r.jikes_cbs.1,
            r.jikes_base.1
        );
        assert!(r.j9_cbs.1 > r.j9_base.1);
        // The chosen configurations stay under 1% overhead.
        assert!(r.jikes_cbs.0 < 1.0);
        assert!(r.j9_cbs.0 < 1.0);
    }
}

#[test]
fn figure1_reproduces_the_bias() {
    let d = figure1_demo(150, 40_000).unwrap();
    let timer = d.rows.iter().find(|r| r.profiler == "timer").unwrap();
    let cbs = d
        .rows
        .iter()
        .find(|r| r.profiler.starts_with("cbs"))
        .unwrap();
    assert!(timer.call_1_pct > 70.0, "timer bias: {timer:?}");
    assert!(cbs.accuracy > timer.accuracy + 20.0);
}

#[test]
fn figure5_jikes_cbs_never_degrades() {
    let f = figure5(
        VmFlavor::Jikes,
        0.3,
        Some(&[Benchmark::Javac, Benchmark::Jack]),
    )
    .unwrap();
    for r in &f.rows {
        assert!(
            r.cbs_speedup_pct > -0.5,
            "{}: cbs-guided inlining degraded: {r:?}",
            r.benchmark
        );
    }
}

#[test]
fn figure5_j9_timer_only_hurts() {
    let f = figure5(
        VmFlavor::J9,
        0.3,
        Some(&[Benchmark::Jess, Benchmark::Javac]),
    )
    .unwrap();
    for r in &f.rows {
        assert!(
            r.timer_speedup_pct < 0.0,
            "{}: timer-only dynamic heuristics should hurt: {r:?}",
            r.benchmark
        );
        assert!(
            r.cbs_speedup_pct > r.timer_speedup_pct,
            "{}: cbs must beat timer-only: {r:?}",
            r.benchmark
        );
    }
}

#[test]
fn ablations_match_paper_claims() {
    // §5.1: the new inliner extracts more from identical profile data.
    let a = inliner_ablation(0.3, Some(&[Benchmark::Mtrt])).unwrap();
    assert!(a.new_minus_old() > 0.0, "new-old = {}", a.new_minus_old());

    // §3.1: exhaustive PIC counters cost 15–50%.
    let e = exhaustive_overhead(0.2, Some(&[Benchmark::Jess])).unwrap();
    let oh = e.rows[0].values[0];
    assert!((10.0..60.0).contains(&oh), "exhaustive overhead {oh}%");

    // §3.2: continuous CBS beats warmup-gated bursts on short runs.
    let p = patching_vs_cbs(0.2, Some(&[Benchmark::Kawa])).unwrap();
    assert!(p.rows[0].values[1] > p.rows[0].values[0]);
}

#[test]
fn frequency_sweep_shows_structural_bias() {
    let f = cbs_repro::experiments::frequency_sweep().unwrap();
    assert_eq!(f.timer_rows.len(), 3);
    // Faster ticking does not fix the timer's accuracy …
    let accs: Vec<f64> = f.timer_rows.iter().map(|r| r.2).collect();
    let spread =
        accs.iter().cloned().fold(0.0, f64::max) - accs.iter().cloned().fold(100.0, f64::min);
    assert!(
        spread < 10.0,
        "accuracy should be frequency-insensitive: {accs:?}"
    );
    // … while CBS at stock frequency is far more accurate.
    assert!(f.cbs_row.1 > accs[0] + 25.0);
    assert!(f.render().contains("1600 Hz"));
}

#[test]
fn hardware_emulation_is_cheap_and_accurate() {
    let h = cbs_repro::experiments::hardware_vs_cbs(0.2, Some(&[Benchmark::Mtrt])).unwrap();
    let r = &h.rows[0];
    let (hw_acc, hw_oh) = (r.values[0], r.values[1]);
    assert!(hw_acc > 40.0, "hardware sampling accuracy {hw_acc}");
    assert!(hw_oh < 1.0, "PMU interrupts stay cheap: {hw_oh}");
    assert!(h.render().contains("hw acc"));
}

#[test]
fn context_sensitive_extension_scores() {
    let c = cbs_repro::experiments::context_sensitivity(0.2, Some(&[Benchmark::Jess])).unwrap();
    let r = &c.rows[0];
    let (flat, ctx, contexts, edges) = (r.values[0], r.values[1], r.values[2], r.values[3]);
    assert!(flat > 0.0 && ctx > 0.0);
    assert!(
        ctx <= flat + 5.0,
        "context-sensitive accuracy should not exceed flat: {ctx} vs {flat}"
    );
    assert!(contexts >= edges, "at least one context per edge");
    assert!(c.render().contains("contexts"));
}

#[test]
fn table2_recommended_config_matches_paper_band() {
    let t = table2(&Table2Options::quick(VmFlavor::Jikes, 0.1)).unwrap();
    // Under the paper's 0.5% budget some configuration beats the (1,1)
    // baseline by a wide margin.
    let base = t.cell(1, 1).unwrap().accuracy;
    let best = t.best_under(0.5).expect("fits budget");
    assert!(
        best.accuracy > base + 15.0,
        "best-under-budget {} vs base {}",
        best.accuracy,
        base
    );
}
