//! The adaptive optimization system over real workloads: warmup must
//! converge, semantics must hold, and the continuously collected DCG must
//! remain accurate enough to drive inlining.

use cbs_repro::prelude::*;

#[test]
fn adaptive_warmup_speeds_up_jess() {
    let program = Benchmark::Jess
        .spec(InputSize::Small)
        .scaled(0.3)
        .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap());
    let mut sys = AdaptiveSystem::new(program, AdaptiveConfig::default());
    let first = sys.run_iteration().unwrap().exec;
    for _ in 0..4 {
        sys.run_iteration().unwrap();
    }
    let last = sys.run_iteration().unwrap().exec;
    assert_eq!(first.return_values, last.return_values, "semantics drifted");
    assert!(
        last.cycles < first.cycles,
        "no warmup speedup: {} -> {}",
        first.cycles,
        last.cycles
    );
    assert!(sys.total_compile_cycles() > 0.0);
    assert!(sys.dcg().num_edges() > 10, "continuous DCG accumulated");
}

#[test]
fn adaptive_is_deterministic() {
    let build = || {
        Benchmark::Db
            .spec(InputSize::Small)
            .scaled(0.2)
            .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap())
    };
    let run = || {
        let mut sys = AdaptiveSystem::new(build(), AdaptiveConfig::default());
        (0..3)
            .map(|_| sys.run_iteration().unwrap().exec.cycles)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "adaptive pipeline must be reproducible");
}

trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}
