//! Differential tests for the interpreter's dispatch strategies.
//!
//! `Vm::run_with` (monomorphized), `Vm::run` (the `&mut dyn Profiler`
//! wrapper) and `Vm::run_reference` (the preserved pre-optimization
//! interpreter) must be observationally indistinguishable: identical
//! [`ExecReport`]s and identical profiler state — graphs, sample counts
//! and simulated overhead — for every profiler mechanism, workload and
//! VM configuration. This is what licenses the hot-path optimizations
//! (cached code cursors, frame pooling, live-thread counter, batched DCG
//! flushes) to claim bit-identical output.
//!
//! [`ExecReport`]: cbs_vm::ExecReport

use cbs_prng::prop::run_cases;
use cbs_prng::SmallRng;
use cbs_profiler::{CbsConfig, CounterBasedSampler, ExhaustiveProfiler, TimerSampler};
use cbs_repro::prelude::*;
use cbs_vm::ExecReport;

/// The three workloads the property sweeps (scaled down so a full
/// dyn/generic/reference triple stays fast).
fn workload(idx: usize) -> Program {
    let bench = [Benchmark::Jess, Benchmark::Javac, Benchmark::Mtrt][idx % 3];
    cbs_repro::workloads::generator::build(&bench.spec(InputSize::Small).scaled(0.02))
        .expect("spec builds")
}

/// Draws a VM configuration that exercises both flavors, multiple
/// threads, and the jittered/exact timer regimes.
fn draw_config(rng: &mut SmallRng) -> VmConfig {
    VmConfig {
        flavor: if rng.gen_range(0..2u32) == 0 {
            VmFlavor::Jikes
        } else {
            VmFlavor::J9
        },
        num_threads: rng.gen_range(1..=3u32),
        timer_jitter: [0u64, 12_500][rng.gen_range(0..2u32) as usize],
        ..VmConfig::default()
    }
}

/// Runs `mk()`-built profilers through all three dispatch paths and
/// asserts the reports and the profiler fingerprints coincide.
fn assert_paths_agree<P, F>(program: &Program, config: &VmConfig, mk: impl Fn() -> P, fp: F)
where
    P: cbs_vm::Profiler + CallGraphProfiler,
    F: Fn(&mut P) -> (DynamicCallGraph, u64, u64),
{
    let vm = Vm::new(program, config.clone());

    let mut generic = mk();
    let generic_report: ExecReport = vm.run_with(&mut generic).expect("generic path runs");

    let mut dynamic = mk();
    let dyn_report = vm.run(&mut dynamic).expect("dyn path runs");

    let mut reference = mk();
    let reference_report = vm
        .run_reference(&mut reference)
        .expect("reference path runs");

    assert_eq!(generic_report, dyn_report, "generic vs dyn ExecReport");
    assert_eq!(
        generic_report, reference_report,
        "generic vs reference ExecReport"
    );

    let g = fp(&mut generic);
    let d = fp(&mut dynamic);
    let r = fp(&mut reference);
    assert_eq!(g, d, "generic vs dyn profiler state");
    assert_eq!(g, r, "generic vs reference profiler state");
}

/// `(dcg, samples_taken, overhead_cycles)` — everything a profiler run
/// leaves behind. `take_dcg` also exercises the flush-on-take path.
fn fingerprint<P: CallGraphProfiler>(p: &mut P) -> (DynamicCallGraph, u64, u64) {
    (p.take_dcg(), p.samples_taken(), p.overhead_cycles())
}

#[test]
fn cbs_state_identical_across_dispatch_paths() {
    run_cases("cbs_dispatch_equivalence", 6, |rng| {
        let program = workload(rng.gen_range(0..3u32) as usize);
        let config = draw_config(rng);
        let stride = rng.gen_range(1..=5u32);
        let samples = rng.gen_range(1..=24u32);
        let policy = match rng.gen_range(0..3u32) {
            0 => SkipPolicy::Fixed,
            1 => SkipPolicy::RoundRobin,
            _ => SkipPolicy::Random {
                seed: rng.next_u64(),
            },
        };
        assert_paths_agree(
            &program,
            &config,
            || {
                CounterBasedSampler::new(CbsConfig {
                    stride,
                    samples_per_tick: samples,
                    skip_policy: policy.clone(),
                    ..CbsConfig::default()
                })
            },
            fingerprint,
        );
    });
}

#[test]
fn timer_state_identical_across_dispatch_paths() {
    run_cases("timer_dispatch_equivalence", 4, |rng| {
        let program = workload(rng.gen_range(0..3u32) as usize);
        let config = draw_config(rng);
        assert_paths_agree(&program, &config, TimerSampler::new, fingerprint);
    });
}

#[test]
fn exhaustive_state_identical_across_dispatch_paths() {
    run_cases("exhaustive_dispatch_equivalence", 4, |rng| {
        let program = workload(rng.gen_range(0..3u32) as usize);
        let config = draw_config(rng);
        assert_paths_agree(&program, &config, ExhaustiveProfiler::new, fingerprint);
    });
}

/// The three workloads, pinned (not randomized) so every benchmark in
/// the suite is guaranteed covered at least once per run, under both
/// flavors.
#[test]
fn every_workload_agrees_under_both_flavors() {
    for idx in 0..3 {
        let program = workload(idx);
        for flavor in [VmFlavor::Jikes, VmFlavor::J9] {
            let config = VmConfig {
                flavor,
                ..VmConfig::default()
            };
            assert_paths_agree(
                &program,
                &config,
                || CounterBasedSampler::new(CbsConfig::new(3, 16)),
                fingerprint,
            );
        }
    }
}
