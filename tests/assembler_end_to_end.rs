//! The text assembler feeding the full pipeline: assemble → verify → run
//! → profile → inline → run again.

use cbs_repro::bytecode::assemble;
use cbs_repro::prelude::*;
use cbs_repro::vm::Value;

const PROGRAM: &str = r#"
# Polymorphic accumulator with a hot helper.
class Ctx fields=2
class Node fields=1
class Leaf extends=Node fields=0

method Node.visit class=Node params=1 locals=0 {
    load 0
    getfield 0
    const 2
    mul
    ret
}

method Leaf.visit class=Leaf params=1 locals=0 {
    load 0
    getfield 0
    const 1
    add
    ret
}

method helper class=Ctx params=1 locals=0 {
    load 0
    const 3
    add
    ret
}

method main class=Ctx params=0 locals=3 {
    new Leaf
    store 1
    const 20000
    store 0
loop:
    load 0
    jz done
    load 1
    callvirt 0 1
    call helper
    store 2
    load 0
    const 1
    sub
    store 0
    jump loop
done:
    load 2
    ret
}

vtable Node 0 Node.visit
vtable Leaf 0 Leaf.visit
entry main
"#;

#[test]
fn assembled_program_runs_and_profiles() {
    let program = assemble(PROGRAM).unwrap();
    let m = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(1, 32)))],
    )
    .unwrap();
    // Leaf.visit: 0 + 1 = 1; helper: 1 + 3 = 4.
    assert_eq!(m.exec.return_values, vec![Value::Int(4)]);
    assert_eq!(m.exec.calls, 40_000);
    let cbs = &m.outcomes[0];
    assert!(cbs.samples > 0);
    assert!(
        cbs.accuracy > 80.0,
        "two-edge profile converges: {}",
        cbs.accuracy
    );
}

#[test]
fn assembled_program_inlines_correctly() {
    let mut program = assemble(PROGRAM).unwrap();
    let before = Vm::new(&program, VmConfig::default())
        .run_unprofiled()
        .unwrap();
    let m = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(1, 32)))],
    )
    .unwrap();
    let report = inline_program(
        &mut program,
        Some(&m.outcomes[0].dcg),
        &NewLinearPolicy::default(),
        &InlineBudget::default(),
        true,
    );
    assert!(report.total_inlines() >= 2, "{report:?}");
    let after = Vm::new(&program, VmConfig::default())
        .run_unprofiled()
        .unwrap();
    assert_eq!(before.return_values, after.return_values);
    assert!(after.calls < before.calls);
    assert!(after.cycles < before.cycles);
}

#[test]
fn disassembly_of_assembled_program_is_readable() {
    let program = assemble(PROGRAM).unwrap();
    let listing = cbs_repro::bytecode::disasm::program(&program);
    assert!(listing.contains("Leaf.visit"));
    assert!(listing.contains("callvirt"));
    assert!(listing.contains("backedge"));
}

#[test]
fn generated_benchmark_round_trips_through_assembly() {
    // A full synthetic benchmark survives disassemble → assemble with
    // identical behavior (call-site numbering may differ, which the
    // execution report does not observe).
    let spec = Benchmark::Db.spec(InputSize::Small).scaled(0.02);
    let original = cbs_repro::workloads::generator::build(&spec).unwrap();
    let text = cbs_repro::bytecode::disassemble(&original);
    let rebuilt =
        cbs_repro::bytecode::assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}"));
    assert_eq!(rebuilt.num_methods(), original.num_methods());
    assert_eq!(rebuilt.num_classes(), original.num_classes());

    let run = |p: &cbs_repro::bytecode::Program| {
        Vm::new(p, VmConfig::default()).run_unprofiled().unwrap()
    };
    let a = run(&original);
    let b = run(&rebuilt);
    assert_eq!(a.return_values, b.return_values);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.calls, b.calls);
    assert_eq!(a.invocations, b.invocations);
}
