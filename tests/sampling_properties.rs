//! Deeper sampling-theory checks: the timer is a *time* profiler (correct
//! metric: exclusive time; wrong metric: call frequency), and the
//! randomized initial skip defends CBS against the §4 adversary.

use cbs_repro::prelude::*;
use cbs_repro::profiler::CallTreeTracer;
use cbs_repro::workloads::adversarial;

/// The timer tick histogram over methods must converge to the exact
/// exclusive-time distribution — same trigger as the biased DCG sampler,
/// but pointed at the metric it actually estimates.
#[test]
fn tick_histogram_matches_exact_exclusive_time() {
    use cbs_repro::adaptive::HotMethodSampler;

    let overlap_at = |scale: f64| -> f64 {
        let program = Benchmark::Mtrt
            .spec(InputSize::Small)
            .scaled(scale)
            .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap());
        let mut tracer = CallTreeTracer::new();
        Vm::new(&program, VmConfig::default())
            .run(&mut tracer)
            .unwrap();
        let mut hot = HotMethodSampler::new();
        Vm::new(&program, VmConfig::default())
            .run(&mut hot)
            .unwrap();
        // Compare the two distributions with the paper's overlap idea:
        // Σ min(share_ticks, share_exclusive) over methods.
        let total_ticks = hot.total() as f64;
        let total_excl = tracer.total_exclusive() as f64;
        let mut overlap = 0.0;
        for (m, t) in tracer.by_exclusive() {
            let exact = 100.0 * t.exclusive as f64 / total_excl;
            let sampled = 100.0 * hot.samples_of(m) as f64 / total_ticks;
            overlap += exact.min(sampled);
        }
        overlap
    };
    // The tick histogram *converges* to the exact exclusive-time
    // distribution as the run (and thus the sample count) grows —
    // whereas the same ticks never converge to the call-frequency
    // distribution (Figure 1 / frequency-sweep experiments).
    let short = overlap_at(1.0);
    let long = overlap_at(4.0);
    assert!(
        long > short + 10.0,
        "no convergence: {short:.1} -> {long:.1}"
    );
    assert!(long > 60.0, "long-run overlap too low: {long:.1}");
}

/// §4's adversary: with the event pattern aligned to the stride, the
/// plain Figure 3 countdown (fixed initial skip) samples the same call
/// positions forever; round-robin skip selection de-biases it.
#[test]
fn round_robin_skip_defeats_stride_aliasing() {
    // 3 callees → 6 invocation events (entry+exit) per iteration under
    // the Jikes flavor; stride 3 divides 6, so a fixed skip revisits the
    // same two event positions in every window.
    // Iteration cost without padding is 67 cycles; 33 nops make it 100,
    // which divides the 100_000-cycle timer period: every (jitter-free)
    // tick lands at the same phase of the call pattern.
    let (program, handles) = adversarial::stride_aliasing(3, 200_000, 33).unwrap();

    let run = |policy: SkipPolicy| {
        let mut cbs = CounterBasedSampler::new(CbsConfig {
            stride: 3,
            samples_per_tick: 8,
            skip_policy: policy,
            ..CbsConfig::default()
        });
        // The adversary requires a perfectly periodic timer: production
        // jitter already de-aliases the window start, so disable it to
        // expose the §4 worst case the randomized skip defends against.
        let vm_config = VmConfig {
            timer_jitter: 0,
            ..VmConfig::default()
        };
        Vm::new(&program, vm_config).run(&mut cbs).unwrap();
        let dcg = cbs.dcg().clone();
        let shares: Vec<f64> = handles
            .callees
            .iter()
            .map(|&m| {
                if dcg.total_weight() == 0.0 {
                    0.0
                } else {
                    100.0 * dcg.incoming_weight(m) / dcg.total_weight()
                }
            })
            .collect();
        shares
    };

    let spread = |shares: &[f64]| {
        let max = shares.iter().cloned().fold(0.0, f64::max);
        let min = shares.iter().cloned().fold(100.0, f64::min);
        max - min
    };

    let fixed = run(SkipPolicy::Fixed);
    let rr = run(SkipPolicy::RoundRobin);
    let random = run(SkipPolicy::Random { seed: 7 });

    // Truth: all three callees are exactly equally hot. The rotation
    // policy retains a small deterministic residue correlation; the
    // random policy is the cleanest; the fixed policy collapses to two
    // of the three callees.
    assert!(
        spread(&rr) < 16.0,
        "round-robin should be near-uniform: {rr:?}"
    );
    assert!(
        spread(&random) < 12.0,
        "random skip should be near-uniform: {random:?}"
    );
    assert!(
        spread(&fixed) > 30.0,
        "fixed skip should alias hard: {fixed:?}"
    );
    assert!(spread(&fixed) > spread(&rr) + 15.0);
    assert!(spread(&fixed) > spread(&random) + 15.0);
}

/// Per-thread CBS windows stay independent under multi-threaded
/// round-robin scheduling.
#[test]
fn cbs_under_multithreaded_scheduling() {
    let program = Benchmark::Jbb
        .spec(InputSize::Small)
        .scaled(0.05)
        .pipe(|s| cbs_repro::workloads::generator::build(&s).unwrap());
    let config = VmConfig {
        num_threads: 4,
        ..VmConfig::default()
    };
    let m = measure(
        &program,
        config,
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
    )
    .unwrap();
    assert_eq!(m.exec.return_values.len(), 4);
    let cbs = &m.outcomes[0];
    assert!(cbs.samples > 0);
    assert!(
        cbs.accuracy > 30.0,
        "multithreaded sampling still converges: {}",
        cbs.accuracy
    );
}

trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}
