//! Cross-crate invariants of the profiling harness:
//!
//! * attaching many profilers to one run gives each exactly the results
//!   it would get alone (the Table 2 grid optimization is sound);
//! * the timer baseline coincides with CBS(stride=1, samples=1), the
//!   degenerate corner the paper identifies;
//! * profiling never perturbs program results or base cycle counts.

use cbs_repro::prelude::*;

fn workload() -> Program {
    Benchmark::Jess
        .spec(InputSize::Small)
        .scaled(0.05)
        .build_program()
}

trait BuildExt {
    fn build_program(&self) -> Program;
}
impl BuildExt for cbs_repro::workloads::WorkloadSpec {
    fn build_program(&self) -> Program {
        cbs_repro::workloads::generator::build(self).expect("spec builds")
    }
}

#[test]
fn multi_attach_equals_solo_runs() {
    let program = workload();

    // Solo runs.
    let solo_timer = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(TimerSampler::new())],
    )
    .unwrap();
    let solo_cbs = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
    )
    .unwrap();

    // Combined run.
    let both = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(TimerSampler::new()),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
        ],
    )
    .unwrap();

    assert_eq!(solo_timer.exec, both.exec, "base run must be identical");
    let t_solo = &solo_timer.outcomes[0];
    let t_both = &both.outcomes[0];
    assert_eq!(t_solo.dcg, t_both.dcg, "timer DCG differs when co-attached");
    assert_eq!(t_solo.samples, t_both.samples);
    let c_solo = &solo_cbs.outcomes[0];
    let c_both = &both.outcomes[1];
    assert_eq!(c_solo.dcg, c_both.dcg, "cbs DCG differs when co-attached");
    assert!((c_solo.overhead_pct - c_both.overhead_pct).abs() < 1e-12);
}

#[test]
fn timer_equals_cbs_1_1() {
    // The paper: the original Jikes mechanism *is* the stride=1,
    // samples=1 corner of CBS. With a fixed initial skip of 1 event, the
    // two implementations must collect identical profiles.
    let program = workload();
    let m = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(TimerSampler::new()),
            Box::new(CounterBasedSampler::new(CbsConfig {
                stride: 1,
                samples_per_tick: 1,
                skip_policy: SkipPolicy::Fixed,
                ..CbsConfig::default()
            })),
        ],
    )
    .unwrap();
    assert_eq!(
        m.outcomes[0].dcg, m.outcomes[1].dcg,
        "timer sampler and CBS(1,1) must see the same edges"
    );
    assert_eq!(m.outcomes[0].samples, m.outcomes[1].samples);
}

#[test]
fn profiling_does_not_perturb_execution() {
    let program = workload();
    let bare = Vm::new(&program, VmConfig::default())
        .run_unprofiled()
        .unwrap();
    let mut grid = MultiProfiler::new();
    for stride in [1, 3, 7] {
        for samples in [1, 8, 64] {
            grid.attach(Box::new(CounterBasedSampler::new(CbsConfig::new(
                stride, samples,
            ))));
        }
    }
    let profiled = Vm::new(&program, VmConfig::default())
        .run(&mut grid)
        .unwrap();
    assert_eq!(bare, profiled, "observers must not change the observation");
}

#[test]
fn exhaustive_profile_counts_every_call() {
    let program = workload();
    let m = measure(&program, VmConfig::default(), vec![]).unwrap();
    assert_eq!(
        m.perfect.total_weight(),
        m.exec.calls as f64,
        "ground truth must count exactly the dynamic calls"
    );
}

#[test]
fn j9_flavor_sees_fewer_events_than_jikes() {
    // Jikes samples entries and exits; J9 entries only. Same program,
    // same CBS config: the Jikes-hosted sampler takes its window quota
    // from a denser event stream.
    let program = workload();
    let run = |flavor| {
        let m = measure(
            &program,
            VmConfig::with_flavor(flavor),
            vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
        )
        .unwrap();
        (m.outcomes[0].samples, m.outcomes[0].accuracy)
    };
    let (jikes_samples, jikes_acc) = run(VmFlavor::Jikes);
    let (j9_samples, j9_acc) = run(VmFlavor::J9);
    assert!(jikes_samples > 0 && j9_samples > 0);
    assert!((0.0..=100.0).contains(&jikes_acc));
    assert!((0.0..=100.0).contains(&j9_acc));
}
