//! Determinism guarantees of the parallel sharded experiment runner:
//! sharding work across threads and merging the per-shard DCGs must be
//! *exactly* — bitwise — equivalent to one serial run.

use cbs_prng::prop::run_cases;
use cbs_prng::SmallRng;
use cbs_repro::dcg::{overlap, CallEdge, DynamicCallGraph};
use cbs_repro::experiments::{table1, table1_with, table2, table3, table3_with, Table2Options};
use cbs_repro::prelude::*;
use cbs_repro::run_cells;

fn edge(caller: u32, site: u32, callee: u32) -> CallEdge {
    CallEdge::new(
        cbs_repro::bytecode::MethodId::new(caller),
        cbs_repro::bytecode::CallSiteId::new(site),
        cbs_repro::bytecode::MethodId::new(callee),
    )
}

/// A DCG with unit-sample (integer) weights, as every profiler records.
fn sampled_dcg(rng: &mut SmallRng, events: usize) -> DynamicCallGraph {
    let mut g = DynamicCallGraph::new();
    for _ in 0..events {
        g.record(
            edge(
                rng.gen_range(0u32..12),
                rng.gen_range(0u32..24),
                rng.gen_range(0u32..12),
            ),
            1.0,
        );
    }
    g
}

#[test]
fn sharded_and_merged_equals_single_thread() {
    // The reduction the parallel runner performs: per-shard graphs merged
    // in stable shard order must equal the graph a single thread records
    // from the same event stream.
    run_cases("sharded_and_merged_equals_single_thread", 32, |rng| {
        let num_shards = rng.gen_range(2usize..8);
        let events_per_shard = rng.gen_range(1usize..200);

        // One event stream, deterministically dealt to shards.
        let seed = rng.next_u64();
        let mut dealer = SmallRng::seed_from_u64(seed);
        let mut serial = DynamicCallGraph::new();
        let mut shards = vec![DynamicCallGraph::new(); num_shards];
        for i in 0..num_shards * events_per_shard {
            let e = edge(
                dealer.gen_range(0u32..12),
                dealer.gen_range(0u32..24),
                dealer.gen_range(0u32..12),
            );
            serial.record(e, 1.0);
            shards[i % num_shards].record(e, 1.0);
        }

        let merged = DynamicCallGraph::merge_all(&shards);
        assert_eq!(
            merged, serial,
            "merge must reconstruct the serial graph exactly"
        );
        assert_eq!(
            merged.total_weight().to_bits(),
            serial.total_weight().to_bits(),
            "totals are bitwise equal for unit-sample weights"
        );
        assert!((overlap(&merged, &serial) - 100.0).abs() < 1e-9);
    });
}

#[test]
fn merge_is_commutative_and_associative_in_weights_and_totals() {
    run_cases(
        "merge_is_commutative_and_associative_in_weights_and_totals",
        32,
        |rng| {
            let na = rng.gen_range(1usize..150);
            let a = sampled_dcg(rng, na);
            let nb = rng.gen_range(1usize..150);
            let b = sampled_dcg(rng, nb);
            let nc = rng.gen_range(1usize..150);
            let c = sampled_dcg(rng, nc);

            // Commutativity: a+b == b+a, bitwise.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba);
            assert_eq!(ab.total_weight().to_bits(), ba.total_weight().to_bits());

            // Associativity: (a+b)+c == a+(b+c), bitwise.
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc);
            assert_eq!(ab_c.total_weight().to_bits(), a_bc.total_weight().to_bits());

            // merge_all agrees with the fold, in any grouping.
            let all = DynamicCallGraph::merge_all([&a, &b, &c]);
            assert_eq!(all, ab_c);
        },
    );
}

#[test]
fn run_cells_is_transparent_for_profiling_work() {
    // Sharding real profiling cells across threads yields the same DCGs,
    // in the same order, as running them inline.
    let cells: Vec<u32> = (0..6).collect();
    let collect = |jobs| {
        run_cells(cells.clone(), jobs, |stride| {
            let program = Benchmark::Jess.spec(InputSize::Small).scaled(0.02);
            let program = cbs_repro::workloads::generator::build(&program)?;
            let m = measure(
                &program,
                VmConfig::default(),
                vec![Box::new(CounterBasedSampler::new(CbsConfig::new(
                    stride + 1,
                    8,
                )))],
            )
            .map_err(cbs_repro::experiments::ExperimentError::Vm)?;
            Ok::<_, cbs_repro::experiments::ExperimentError>(m.outcomes[0].dcg.clone())
        })
        .expect("cells run")
    };
    let serial = collect(Parallelism::SERIAL);
    let parallel = collect(Parallelism::jobs(4));
    assert_eq!(serial, parallel);
}

#[test]
fn table1_parallel_renders_byte_identically() {
    let a = table1(0.01).unwrap().render();
    let b = table1_with(0.01, Parallelism::jobs(4)).unwrap().render();
    assert_eq!(a, b);
}

#[test]
fn table2_parallel_renders_byte_identically() {
    let serial = table2(&Table2Options::quick(VmFlavor::Jikes, 0.03)).unwrap();
    for jobs in [2, 4, 9] {
        let sharded =
            table2(&Table2Options::quick(VmFlavor::Jikes, 0.03).with_jobs(Parallelism::jobs(jobs)))
                .unwrap();
        assert_eq!(
            serial.render(),
            sharded.render(),
            "table2 with jobs={jobs} must render byte-identically"
        );
        for (a, b) in serial.cells.iter().zip(&sharded.cells) {
            assert_eq!(a.overhead_pct.to_bits(), b.overhead_pct.to_bits());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }
}

#[test]
fn table3_parallel_renders_byte_identically() {
    let benches = [Benchmark::Jess, Benchmark::Mtrt];
    let a = table3(0.03, Some(&benches)).unwrap().render();
    let b = table3_with(0.03, Some(&benches), Parallelism::jobs(3))
        .unwrap()
        .render();
    assert_eq!(a, b);
}
