//! Telemetry acceptance: metrics are provably inert (every rendered
//! artifact is byte-identical with telemetry on or off) and the
//! deterministic counters pin to exact values for a seeded serial run.
//!
//! The whole scenario lives in one `#[test]` so nothing else in this
//! binary races the process-global registry while deltas are measured
//! or the kill switch is toggled.

use cbs_core::experiments::fleet_with;
use cbs_core::parallel::Parallelism;
use cbs_core::telemetry;

#[test]
fn fleet_is_bit_identical_with_telemetry_on_or_off_and_counters_pin() {
    let registry = telemetry::global();
    assert!(registry.is_enabled(), "telemetry defaults to on");

    // Run 1 (telemetry on): pin the deterministic counter deltas for
    // the seeded serial fleet experiment at scale 0.01.
    let base = registry.snapshot();
    let run1 = fleet_with(0.01, Parallelism::SERIAL)
        .expect("runs")
        .render();
    let d1 = registry.delta_since(&base).deterministic().without_gauges();

    let pin = |name: &str, want: u64| {
        assert_eq!(d1.counter(name), want, "counter {name}");
    };
    // 13 benchmarks x 4 VMs x (snapshot + delta) frames.
    pin("profiled.agg.frames", 104);
    pin("profiled.agg.records", 10_576);
    pin("cbs.samples", 16_350);
    pin("cbs.windows", 1_022);
    assert!(d1.counter("vm.fused_runs") > 0);

    // Run 2 (telemetry on): the render and the *entire* deterministic
    // delta repeat byte-for-byte.
    let base = registry.snapshot();
    let run2 = fleet_with(0.01, Parallelism::SERIAL)
        .expect("runs")
        .render();
    let d2 = registry.delta_since(&base).deterministic().without_gauges();
    assert_eq!(run1, run2, "fleet render is deterministic");
    assert_eq!(d1.render(), d2.render(), "counter deltas repeat exactly");

    // Run 3 (telemetry off): same render bytes, zero counter movement.
    registry.set_enabled(false);
    let base = registry.snapshot();
    let run3 = fleet_with(0.01, Parallelism::SERIAL)
        .expect("runs")
        .render();
    let d3 = registry.delta_since(&base);
    registry.set_enabled(true);
    assert_eq!(run1, run3, "telemetry changed the rendered artifact");
    assert!(
        d3.deterministic().without_gauges().nonzero().is_empty(),
        "disabled telemetry still moved counters:\n{}",
        d3.nonzero().render()
    );
}
