//! Cross-crate service test: real benchmark VMs profiled with CBS,
//! streamed over the real TCP service, reconstructed bit-exactly.

use cbs_core::prelude::*;
use cbs_core::profiled::{serve, AggregatorConfig, NetConfig, ProfileClient, ShardedAggregator};
use std::sync::Arc;

/// Collects one CBS profile of `bench` with a replica-specific sampler.
fn vm_profile(bench: Benchmark, stride: u32, seed: u64) -> DynamicCallGraph {
    let spec = bench.spec(InputSize::Small).scaled(0.02);
    let program = cbs_core::workloads::generator::build(&spec).expect("builds");
    let config = VmConfig {
        timer_seed: seed,
        ..VmConfig::default()
    };
    let m = measure(
        &program,
        config,
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(
            stride, 16,
        )))],
    )
    .expect("runs");
    m.outcomes[0].dcg.clone()
}

#[test]
fn real_vm_profiles_round_trip_through_the_service() {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
    let server = serve("127.0.0.1:0", agg, NetConfig::default()).expect("binds");

    // Three decorrelated VMs of the same benchmark, pushed serially so
    // the aggregation order (and thus every merged f64) is fixed.
    let profiles: Vec<DynamicCallGraph> = [(3u32, 1u64), (5, 2), (7, 3)]
        .into_iter()
        .map(|(stride, seed)| vm_profile(Benchmark::Jess, stride, seed))
        .collect();
    let mut client = ProfileClient::connect(server.addr(), NetConfig::default()).expect("connects");
    for p in &profiles {
        client.push_snapshot(p).expect("accepted");
    }

    let pulled = client.pull().expect("pull succeeds");
    let merged = server.aggregator().merged_snapshot();
    assert_eq!(pulled, merged, "wire round-trip is lossless");
    for (e, w) in merged.iter() {
        assert_eq!(pulled.weight(e).to_bits(), w.to_bits(), "edge {e}");
    }
    assert_eq!(
        pulled.total_weight().to_bits(),
        merged.total_weight().to_bits()
    );

    // The fleet profile is at least as accurate as its members against
    // any one VM's view of the program: it contains every sampled edge.
    for p in &profiles {
        for (e, _) in p.iter() {
            assert!(pulled.weight(e) > 0.0, "fleet profile lost edge {e}");
        }
    }
    server.shutdown();
}

#[test]
fn fleet_experiment_is_deterministic_across_job_counts() {
    let serial = cbs_core::experiments::fleet_with(0.01, Parallelism::SERIAL).expect("runs");
    let parallel = cbs_core::experiments::fleet_with(0.01, Parallelism::jobs(4)).expect("runs");
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(
        serial.mean_fleet.to_bits(),
        parallel.mean_fleet.to_bits(),
        "aggregation totals are bit-identical for any --jobs"
    );
}
