//! Property tests: program transformations preserve semantics.
//!
//! The inliner and optimizer are exercised over the randomized workload
//! generator: for any spec in the strategy space, the transformed program
//! must compute identical results with no more simulated cycles … and the
//! whole pipeline must stay deterministic. (Driven by the in-repo
//! `cbs_prng::prop` harness.)

use cbs_prng::prop::run_cases;
use cbs_prng::SmallRng;
use cbs_repro::prelude::*;
use cbs_repro::workloads::WorkloadSpec;

const CASES: u64 = 24;
const SLOW_CASES: u64 = 12;

fn arb_spec(rng: &mut SmallRng) -> WorkloadSpec {
    let seed = rng.gen_range(1u64..1000);
    let num_methods = rng.gen_range(20u32..80);
    let fanout = rng.gen_range(2u32..5);
    let poly = 0.9 * rng.gen_f64();
    let mask = [0i64, 1, 3, 7, 15][rng.gen_range(0usize..5)];
    let work = rng.gen_range(1u32..8);
    let tiers = rng.gen_range(1u32..4);
    let phases = rng.gen_range(1u32..3);
    let chain = 0.5 * rng.gen_f64();
    WorkloadSpec {
        name: format!("prop{seed}"),
        seed,
        num_methods: num_methods.max(4 * 2 + 3 + fanout),
        families: 3,
        fanout,
        polymorphic_fraction: poly,
        receiver_mask: mask,
        work_per_call: work,
        leaf_loop: 0,
        leaf_work: (1, 5),
        tiers,
        hot_repeat: 2,
        phases,
        chain_fraction: chain,
        io_sites: 1,
        io_cost: 2,
        target_seconds: 0.002,
    }
}

#[test]
fn generated_programs_verify_and_run() {
    run_cases("generated_programs_verify_and_run", CASES, |rng| {
        let spec = arb_spec(rng);
        let program = cbs_repro::workloads::generator::build(&spec).unwrap();
        let report = Vm::new(&program, VmConfig::default())
            .run_unprofiled()
            .unwrap();
        assert!(report.instructions > 0);
        assert!(report.calls > 0);
    });
}

#[test]
fn inlining_preserves_semantics() {
    run_cases("inlining_preserves_semantics", CASES, |rng| {
        let spec = arb_spec(rng);
        let program = cbs_repro::workloads::generator::build(&spec).unwrap();
        let before = Vm::new(&program, VmConfig::default())
            .run_unprofiled()
            .unwrap();

        // Profile, then inline with the paper's policy.
        let m = measure(
            &program,
            VmConfig::default(),
            vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 8)))],
        )
        .unwrap();
        let mut optimized = program.clone();
        inline_program(
            &mut optimized,
            Some(&m.outcomes[0].dcg),
            &NewLinearPolicy::default(),
            &InlineBudget::default(),
            true,
        );
        let after = Vm::new(&optimized, VmConfig::default())
            .run_unprofiled()
            .unwrap();
        assert_eq!(
            &before.return_values, &after.return_values,
            "inlining changed program results"
        );
        assert!(
            after.cycles <= before.cycles,
            "inlining+optimization made the program slower: {} -> {}",
            before.cycles,
            after.cycles
        );
        assert!(after.calls <= before.calls);
    });
}

#[test]
fn optimizer_alone_preserves_semantics() {
    run_cases("optimizer_alone_preserves_semantics", CASES, |rng| {
        let spec = arb_spec(rng);
        let program = cbs_repro::workloads::generator::build(&spec).unwrap();
        let before = Vm::new(&program, VmConfig::default())
            .run_unprofiled()
            .unwrap();
        let mut optimized = program.clone();
        cbs_repro::opt::Optimizer::new().optimize_program(&mut optimized);
        let after = Vm::new(&optimized, VmConfig::default())
            .run_unprofiled()
            .unwrap();
        assert_eq!(&before.return_values, &after.return_values);
        assert!(after.instructions <= before.instructions);
    });
}

#[test]
fn guarded_inlining_with_wrong_class_is_safe() {
    run_cases("guarded_inlining_with_wrong_class_is_safe", CASES, |rng| {
        // Force guarded inlining of the *rare* receiver everywhere the
        // profile saw a polymorphic site: guards mostly miss, the slow
        // path must keep semantics intact.
        let spec = arb_spec(rng);
        let program = cbs_repro::workloads::generator::build(&spec).unwrap();
        let before = Vm::new(&program, VmConfig::default())
            .run_unprofiled()
            .unwrap();
        let m = measure(
            &program,
            VmConfig::default(),
            vec![Box::new(CounterBasedSampler::new(CbsConfig::new(1, 64)))],
        )
        .unwrap();
        let dcg = &m.outcomes[0].dcg;
        let mut optimized = program.clone();
        // A policy that guards the least-frequent observed target.
        #[derive(Debug)]
        struct WrongWay;
        impl cbs_repro::inliner::InlinePolicy for WrongWay {
            fn name(&self) -> String {
                "wrong-way".into()
            }
            fn should_inline_direct(&self, _: &cbs_repro::inliner::DirectContext) -> bool {
                false
            }
            fn guarded_targets(
                &self,
                ctx: &cbs_repro::inliner::VirtualContext,
            ) -> Vec<cbs_repro::bytecode::MethodId> {
                ctx.targets
                    .last()
                    .map(|t| vec![t.callee])
                    .into_iter()
                    .flatten()
                    .collect()
            }
        }
        inline_program(
            &mut optimized,
            Some(dcg),
            &WrongWay,
            &InlineBudget::default(),
            true,
        );
        let after = Vm::new(&optimized, VmConfig::default())
            .run_unprofiled()
            .unwrap();
        assert_eq!(
            &before.return_values, &after.return_values,
            "mispredicted guards must fall back correctly"
        );
    });
}

#[test]
fn assembly_round_trip_preserves_behavior() {
    run_cases(
        "assembly_round_trip_preserves_behavior",
        SLOW_CASES,
        |rng| {
            let spec = arb_spec(rng);
            let original = cbs_repro::workloads::generator::build(&spec).unwrap();
            let text = cbs_repro::bytecode::disassemble(&original);
            let rebuilt =
                cbs_repro::bytecode::assemble(&text).unwrap_or_else(|e| panic!("reassembly: {e}"));
            let a = Vm::new(&original, VmConfig::default())
                .run_unprofiled()
                .unwrap();
            let b = Vm::new(&rebuilt, VmConfig::default())
                .run_unprofiled()
                .unwrap();
            assert_eq!(a.return_values, b.return_values);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.invocations, b.invocations);
        },
    );
}

#[test]
fn dcg_serialization_round_trips_profiles() {
    run_cases(
        "dcg_serialization_round_trips_profiles",
        SLOW_CASES,
        |rng| {
            let spec = arb_spec(rng);
            let program = cbs_repro::workloads::generator::build(&spec).unwrap();
            let m = measure(
                &program,
                VmConfig::default(),
                vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 4)))],
            )
            .unwrap();
            let text = cbs_repro::dcg::serialize::to_text(&m.outcomes[0].dcg);
            let parsed = cbs_repro::dcg::serialize::from_text(&text)
                .unwrap_or_else(|e| panic!("parse: {e}"));
            assert_eq!(&parsed, &m.outcomes[0].dcg);
        },
    );
}
