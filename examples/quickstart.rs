//! Quickstart: build a program, attach the paper's counter-based sampler,
//! and compare its call-graph profile to ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cbs_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny object-oriented program: a loop dispatching through a
    // virtual slot with a skewed receiver distribution, plus two direct
    // helper calls.
    let mut b = ProgramBuilder::new();
    let shape = b.add_class("Shape", 1);
    let area = b.function("Shape.area", shape, 1, 0, |c| {
        c.load(0).get_field(0).const_(2).mul().ret();
    })?;
    b.set_vtable(shape, cbs_core::bytecode::VirtualSlot::new(0), area);
    let square = b.add_subclass("Square", shape, 0);
    let sq_area = b.function("Square.area", square, 1, 0, |c| {
        c.load(0).get_field(0).dup().mul().ret();
    })?;
    b.set_vtable(square, cbs_core::bytecode::VirtualSlot::new(0), sq_area);

    let scale = b.function("scale", shape, 1, 0, |c| {
        c.load(0).const_(3).mul().ret();
    })?;
    let main = b.function("main", shape, 0, 4, |c| {
        c.new_object(shape).store(1);
        c.new_object(square).store(2);
        c.counted_loop(0, 500_000, |c| {
            // 7 of 8 iterations use the Square receiver.
            let rare = c.label();
            let done = c.label();
            c.load(0).const_(7).band().jump_if_zero(rare);
            c.load(2).jump(done);
            c.bind(rare).load(1);
            c.bind(done)
                .call_virtual(cbs_core::bytecode::VirtualSlot::new(0), 1);
            c.call(scale).store(3);
        });
        c.load(3).ret();
    })?;
    b.set_entry(main);
    let program = b.build()?;

    // Run once with the CBS profiler (stride 3, 16 samples per timer
    // tick — the Table 3 configuration) and ground truth attached.
    let measurement = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
    )?;

    let cbs = &measurement.outcomes[0];
    println!(
        "program ran {:.2} simulated seconds, {} dynamic calls",
        measurement.exec.seconds, measurement.exec.calls
    );
    println!(
        "cbs took {} samples at {:.3}% overhead; accuracy {:.1}%",
        cbs.samples, cbs.overhead_pct, cbs.accuracy
    );
    println!("\nhottest edges in the sampled DCG:");
    for (edge, weight) in cbs.dcg.top_edges(5) {
        let caller = program.method(edge.caller).name();
        let callee = program.method(edge.callee).name();
        println!(
            "  {caller} -> {callee}: {:.1}% (truth {:.1}%)",
            cbs.dcg.weight_percent(&edge),
            measurement.perfect.weight_percent(&edge),
        );
        let _ = weight;
    }
    Ok(())
}
