//! The full adaptive-optimization feedback loop: run, sample, promote,
//! recompile — watch the VM warm up across iterations.
//!
//! ```sh
//! cargo run --release --example adaptive_vm
//! ```

use cbs_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Benchmark::Jess.build(InputSize::Small)?;
    let mut system = AdaptiveSystem::new(program, AdaptiveConfig::default());

    println!("iter  cycles      promotions  compile-cycles  profile-oh");
    let mut first = None;
    let mut last = 0;
    for i in 0..6 {
        let r = system.run_iteration()?;
        first.get_or_insert(r.exec.cycles);
        last = r.exec.cycles;
        println!(
            "{:>4}  {:>10}  {:>10}  {:>14.0}  {:>9}",
            i,
            r.exec.cycles,
            r.promotions.len(),
            r.compile_cycles,
            r.profile_overhead_cycles
        );
    }
    let first = first.expect("at least one iteration ran");
    println!(
        "\nwarmup speedup: {:+.1}% (DCG: {} edges accumulated)",
        100.0 * (first as f64 / last as f64 - 1.0),
        system.dcg().num_edges()
    );
    Ok(())
}
