//! The paper's Figure 1, live: a loop with a long non-call region and two
//! short calls defeats timer-based sampling; counter-based sampling
//! recovers the truth.
//!
//! ```sh
//! cargo run --release --example adversarial
//! ```

use cbs_core::experiments::figure1_demo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", figure1_demo(200, 100_000)?.render());
    println!(
        "call_1 and call_2 run equally often; the timer sampler lands in\n\
         the non-call region and always wakes at call_1's prologue, so it\n\
         reports call_1 hot and call_2 cold. CBS decorrelates the sample\n\
         from the tick with its stride and recovers ~50/50."
    );
    Ok(())
}
