//! End-to-end profile-directed inlining: profile a benchmark with both
//! the timer baseline and CBS, feed each profile to the paper's new
//! inliner, and measure the resulting steady-state speedups.
//!
//! ```sh
//! cargo run --release --example inlining_speedup
//! ```

use cbs_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Benchmark::Javac;
    let program = bench.build(InputSize::Small)?;
    println!(
        "{} small: {} methods, {} call sites",
        bench,
        program.num_methods(),
        program.num_call_sites()
    );

    // Profile one run with both mechanisms attached.
    let m = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(TimerSampler::new()),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
        ],
    )?;
    let base_cycles = m.exec.cycles;
    for outcome in &m.outcomes {
        println!(
            "{:<26} accuracy {:5.1}%  overhead {:.3}%",
            outcome.name, outcome.accuracy, outcome.overhead_pct
        );
    }

    // Inline with each profile and re-measure.
    for outcome in &m.outcomes {
        let mut optimized = program.clone();
        let report = inline_program(
            &mut optimized,
            Some(&outcome.dcg),
            &NewLinearPolicy::default(),
            &InlineBudget::default(),
            true,
        );
        let after = Vm::new(&optimized, VmConfig::default()).run_unprofiled()?;
        println!(
            "{:<26} {} inlines ({} guarded) -> {:+.1}% speedup",
            outcome.name,
            report.total_inlines(),
            report.guarded_inlines,
            100.0 * (base_cycles as f64 / after.cycles as f64 - 1.0),
        );
    }
    Ok(())
}
