//! The context-sensitive extension (§1/§7): the same CBS mechanism,
//! recording full stack walks into a calling context tree instead of
//! single edges.
//!
//! ```sh
//! cargo run --release --example context_sensitive
//! ```

use cbs_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program where one helper is called from two different contexts
    // with very different frequencies — invisible to a flat DCG,
    // preserved by the CCT.
    let mut b = ProgramBuilder::new();
    let cls = b.add_class("C", 0);
    let helper = b.function("helper", cls, 1, 0, |c| {
        c.load(0).const_(1).add().ret();
    })?;
    // Both paths call helper *through the same wrapper*: the flat DCG has
    // one wrapper->helper edge and cannot tell the contexts apart.
    let wrapper = b.function("wrapper", cls, 1, 0, |c| {
        c.load(0).call(helper).ret();
    })?;
    let hot_path = b.function("hot_path", cls, 1, 0, |c| {
        c.load(0).call(wrapper).ret();
    })?;
    let cold_path = b.function("cold_path", cls, 1, 0, |c| {
        c.load(0).call(wrapper).ret();
    })?;
    let main = b.function("main", cls, 0, 2, |c| {
        c.counted_loop(0, 400_000, |c| {
            let rare = c.label();
            let done = c.label();
            c.load(0).const_(63).band().jump_if_zero(rare);
            c.load(1).call(hot_path).store(1).jump(done);
            c.bind(rare).load(1).call(cold_path).store(1);
            c.bind(done);
        });
        c.load(1).ret();
    })?;
    b.set_entry(main);
    let program = b.build()?;

    let mut cbs = CounterBasedSampler::new(CbsConfig {
        context_sensitive: true,
        ..CbsConfig::new(3, 16)
    });
    Vm::new(&program, VmConfig::default()).run(&mut cbs)?;

    let cct = cbs.cct().expect("context tree enabled");
    println!(
        "flat DCG: {} edges; CCT: {} context nodes, depth {}",
        cbs.dcg().num_edges(),
        cct.num_nodes(),
        cct.max_depth()
    );
    println!("\nhelper's weight by calling context:");
    for (node, step, weight) in cct.iter() {
        if step.method == helper && weight > 0.0 {
            let path: Vec<String> = cct
                .path(node)
                .iter()
                .map(|s| program.method(s.method).name().to_owned())
                .collect();
            println!("  {}: {weight}", path.join(" -> "));
        }
    }
    println!("\nthe flat DCG collapses them into a single edge:");
    for (edge, w) in cbs.dcg().edges_by_weight() {
        if edge.callee == helper {
            println!("  {} -> helper: {w}", program.method(edge.caller).name());
        }
    }
    Ok(())
}
