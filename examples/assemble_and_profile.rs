//! Author a program in the textual assembly format, run it under every
//! profiling mechanism at once, and print the per-mechanism view of its
//! hottest edge.
//!
//! ```sh
//! cargo run --release --example assemble_and_profile
//! ```

use cbs_repro::bytecode::assemble;
use cbs_repro::prelude::*;

const SOURCE: &str = r#"
# A pipeline: main drives process(), which alternates two worker shapes.
class Ctx fields=0
class Worker fields=1
class FastWorker extends=Worker fields=0

method Worker.step class=Worker params=1 locals=0 {
    load 0
    getfield 0
    const 7
    mul
    ret
}

method FastWorker.step class=FastWorker params=1 locals=0 {
    load 0
    getfield 0
    const 1
    add
    ret
}

method process class=Ctx params=2 locals=0 {
    load 1
    callvirt 0 1
    ret
}

method main class=Ctx params=0 locals=4 {
    new Worker
    store 1
    new FastWorker
    store 2
    const 300000
    store 0
loop:
    load 0
    jz done
    # 7 of 8 iterations use the FastWorker.
    load 0
    const 7
    and
    jz slow
    load 2
    jump chosen
slow:
    load 1
chosen:
    store 3
    new Ctx
    load 3
    call process
    store 3
    load 0
    const 1
    sub
    store 0
    jump loop
done:
    const 0
    ret
}

vtable Worker 0 Worker.step
vtable FastWorker 0 FastWorker.step
entry main
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(SOURCE)?;
    println!(
        "{}",
        cbs_repro::bytecode::disasm::method(&program, program.entry())
    );

    let m = measure(
        &program,
        VmConfig::default(),
        vec![
            Box::new(TimerSampler::new()),
            Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
            Box::new(CodePatchingProfiler::new()),
            Box::new(PcSampler::new()),
        ],
    )?;

    println!(
        "{} calls, {} edges in the perfect DCG\n",
        m.exec.calls,
        m.perfect.num_edges()
    );
    println!(
        "{:<28} {:>9} {:>10} {:>9}",
        "mechanism", "samples", "overhead%", "accuracy"
    );
    for o in &m.outcomes {
        println!(
            "{:<28} {:>9} {:>10.3} {:>9.1}",
            o.name, o.samples, o.overhead_pct, o.accuracy
        );
    }

    // What each mechanism believes about the virtual dispatch inside
    // process(): the receiver split is really 87.5 / 12.5.
    let process = program.method_by_name("process").expect("declared above");
    let (_, site, _) = process.call_instructions().next().expect("one call site");
    println!("\nobserved receiver split at process()'s dispatch (truth 87.5/12.5):");
    for o in &m.outcomes {
        let dist = o.dcg.site_distribution(site);
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        let parts: Vec<String> = dist
            .iter()
            .map(|(mid, w)| {
                format!(
                    "{} {:.1}%",
                    program.method(*mid).name(),
                    100.0 * w / total.max(1.0)
                )
            })
            .collect();
        println!("  {:<28} {}", o.name, parts.join(", "));
    }
    Ok(())
}
